// Embedded-reference equivalence for the placer solver (the
// ordering_frontier_equivalence pattern): the blocked-scalar PCG below
// is the production solve_pcg transcribed verbatim onto the
// simd::scalar_ref kernels.  Production must match it BITWISE — every
// iterate, the final x, the iteration count — under whichever backend
// this binary was built with.  In a GTL_SIMD=scalar build the comparison
// is the identity; in an avx2 build it proves the vector port, and the
// CI backend matrix runs both.

#include "place/linear_system.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <span>
#include <vector>

#include "util/rng.hpp"
#include "util/simd.hpp"

namespace gtl {
namespace {

// --- embedded reference: solve_pcg on scalar_ref kernels -----------------

struct RefCsr {
  std::size_t n = 0;
  std::vector<std::size_t> row_offset;
  std::vector<std::uint32_t> col;
  std::vector<double> val;
  std::vector<double> diag;
};

void ref_multiply(const RefCsr& a, const double* x, double* y) {
  simd::scalar_ref::spmv_csr(a.n, a.row_offset.data(), a.col.data(),
                             a.val.data(), x, y);
}

CgResult ref_solve_pcg(const RefCsr& a, std::span<const double> b,
                       std::span<double> x, double tolerance,
                       std::size_t max_iterations) {
  namespace k = simd::scalar_ref;
  const std::size_t n = a.n;
  CgResult out;

  const double b_norm = std::sqrt(k::dot_blocked(b.data(), b.data(), n));
  if (b_norm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    out.converged = true;
    return out;
  }

  std::vector<double> r(n), z(n), p(n), ap(n);
  ref_multiply(a, x.data(), ap.data());
  k::sub_elem(b.data(), ap.data(), n, r.data());

  k::jacobi_precondition(n, a.diag.data(), r.data(), z.data());
  p.assign(z.begin(), z.end());
  double rz = k::dot_blocked(r.data(), z.data(), n);

  for (std::size_t it = 0; it < max_iterations; ++it) {
    const double res =
        std::sqrt(k::dot_blocked(r.data(), r.data(), n)) / b_norm;
    out.residual = res;
    out.iterations = it;
    if (res < tolerance) {
      out.converged = true;
      return out;
    }
    ref_multiply(a, p.data(), ap.data());
    const double pap = k::dot_blocked(p.data(), ap.data(), n);
    if (pap <= 0.0) break;
    const double alpha = rz / pap;
    k::axpy2(n, alpha, p.data(), ap.data(), x.data(), r.data());
    k::jacobi_precondition(n, a.diag.data(), r.data(), z.data());
    const double rz_new = k::dot_blocked(r.data(), z.data(), n);
    const double beta = rz_new / rz;
    rz = rz_new;
    k::xpay(n, z.data(), beta, p.data());
  }
  out.residual = std::sqrt(k::dot_blocked(r.data(), r.data(), n)) / b_norm;
  out.converged = out.residual < tolerance;
  return out;
}

// --- random SPD test systems ---------------------------------------------

struct System {
  SparseMatrix matrix;
  RefCsr ref;
  std::vector<double> b;
};

/// Random graph-Laplacian-plus-anchors system of dimension n — the shape
/// quadratic placement assembles.  `anchor_every` rows get a diagonal
/// anchor; 0 anchors leaves the matrix singular on purpose.
System make_system(std::size_t n, std::uint64_t seed,
                   std::size_t anchor_every) {
  System s{SparseMatrix(n), {}, {}};
  Rng rng(seed);
  std::vector<std::vector<double>> dense(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    // ~3 random neighbors per row, symmetric.
    for (int e = 0; e < 3; ++e) {
      const auto j = static_cast<std::size_t>(rng.next_below(n));
      if (j == i) continue;
      const double w =
          0.25 + static_cast<double>(rng.next_below(1000)) / 500.0;
      dense[i][j] -= w;
      dense[j][i] -= w;
      dense[i][i] += w;
      dense[j][j] += w;
    }
    if (anchor_every != 0 && i % anchor_every == 0) {
      dense[i][i] += 1.0 + static_cast<double>(rng.next_below(100)) / 50.0;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (dense[i][j] != 0.0 || i == j) s.matrix.add(i, j, dense[i][j]);
    }
  }
  s.matrix.assemble();

  // Mirror CSR for the reference (same dense source, same layout rules).
  s.ref.n = n;
  s.ref.row_offset.assign(1, 0);
  s.ref.diag.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (dense[i][j] != 0.0 || i == j) {
        s.ref.col.push_back(static_cast<std::uint32_t>(j));
        s.ref.val.push_back(dense[i][j]);
        if (i == j) s.ref.diag[i] = dense[i][j];
      }
    }
    s.ref.row_offset.push_back(s.ref.col.size());
  }

  s.b.resize(n);
  for (double& v : s.b) {
    v = static_cast<double>(rng.next_int(-500, 500)) / 100.0;
  }
  return s;
}

void expect_bitwise_equal(std::span<const double> got,
                          std::span<const double> want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    // memcmp, not ==: NaN payloads and signed zeros must agree too.
    ASSERT_EQ(std::memcmp(&got[i], &want[i], sizeof(double)), 0)
        << what << " diverges at " << i << ": " << got[i] << " vs "
        << want[i];
  }
}

TEST(PcgEquivalence, SpmvMatchesEmbeddedReferenceBitwise) {
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 31u, 64u, 97u}) {
    const System s = make_system(n, 0xA0 + n, 4);
    Rng rng(0xBEEF + n);
    std::vector<double> x(n), got(n), want(n);
    for (double& v : x) {
      v = static_cast<double>(rng.next_int(-1000, 1000)) / 64.0;
    }
    s.matrix.multiply(x, got);
    ref_multiply(s.ref, x.data(), want.data());
    expect_bitwise_equal(got, want, "spmv");
  }
}

TEST(PcgEquivalence, SolveMatchesEmbeddedReferenceBitwise) {
  for (const std::size_t n : {1u, 2u, 5u, 16u, 33u, 100u}) {
    const System s = make_system(n, 0xC0DE + n, 3);
    std::vector<double> x_got(n, 0.0), x_want(n, 0.0);
    const CgResult got = solve_pcg(s.matrix, s.b, x_got, 1e-9, 200);
    const CgResult want = ref_solve_pcg(s.ref, s.b, x_want, 1e-9, 200);
    EXPECT_EQ(got.iterations, want.iterations) << "n=" << n;
    EXPECT_EQ(got.converged, want.converged) << "n=" << n;
    ASSERT_EQ(std::memcmp(&got.residual, &want.residual, sizeof(double)), 0)
        << "n=" << n;
    expect_bitwise_equal(x_got, x_want, "pcg solution");
  }
}

TEST(PcgEquivalence, WarmStartAndSingularSystemsStayBitwiseEqual) {
  // No anchors: the Laplacian is singular; CG may stall or break on
  // pap <= 0, and both implementations must do so identically.
  for (const std::size_t n : {4u, 9u, 40u}) {
    const System s = make_system(n, 0xD1CE + n, 0);
    Rng rng(0xF00D + n);
    std::vector<double> x_got(n), x_want(n);
    for (std::size_t i = 0; i < n; ++i) {
      x_got[i] = static_cast<double>(rng.next_int(-100, 100)) / 8.0;
      x_want[i] = x_got[i];
    }
    const CgResult got = solve_pcg(s.matrix, s.b, x_got, 1e-8, 64);
    const CgResult want = ref_solve_pcg(s.ref, s.b, x_want, 1e-8, 64);
    EXPECT_EQ(got.iterations, want.iterations) << "n=" << n;
    EXPECT_EQ(got.converged, want.converged) << "n=" << n;
    expect_bitwise_equal(x_got, x_want, "singular-system solution");
  }
}

}  // namespace
}  // namespace gtl
