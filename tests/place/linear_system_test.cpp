#include "place/linear_system.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gtl {
namespace {

TEST(SparseMatrix, AssemblesAndMultiplies) {
  // [2 -1; -1 2]
  SparseMatrix a(2);
  a.add(0, 0, 2.0);
  a.add(1, 1, 2.0);
  a.add(0, 1, -1.0);
  a.add(1, 0, -1.0);
  a.assemble();
  std::vector<double> x = {1.0, 2.0}, y(2);
  a.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(SparseMatrix, DuplicateTripletsSum) {
  SparseMatrix a(1);
  a.add(0, 0, 1.0);
  a.add(0, 0, 2.5);
  a.assemble();
  EXPECT_DOUBLE_EQ(a.diagonal()[0], 3.5);
}

TEST(SparseMatrix, CancelledDiagonalSurvivesAssembly) {
  // Regression: terms that sum to exactly zero used to be dropped from
  // the CSR arrays even on the diagonal, so a later add_to_diagonal —
  // the anchor re-weighting path — aborted with "no diagonal entry".
  SparseMatrix a(2);
  a.add(0, 0, 3.0);
  a.add(0, 0, -3.0);  // cancels structurally-present diagonal
  a.add(1, 1, 1.0);
  a.assemble();
  EXPECT_DOUBLE_EQ(a.diagonal()[0], 0.0);
  a.add_to_diagonal(0, 4.0);  // must not abort
  EXPECT_DOUBLE_EQ(a.diagonal()[0], 4.0);
  std::vector<double> x = {1.0, 2.0}, y(2);
  a.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
}

TEST(SparseMatrix, CancelledOffDiagonalIsStillDropped) {
  SparseMatrix a(2);
  a.add(0, 0, 1.0);
  a.add(1, 1, 1.0);
  a.add(0, 1, 2.0);
  a.add(0, 1, -2.0);
  a.assemble();
  // y = A x must ignore the cancelled off-diagonal entirely.
  std::vector<double> x = {5.0, 7.0}, y(2);
  a.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(SolvePcg, NegativeDiagonalDoesNotPoisonPreconditioner) {
  // The Jacobi guard is on |diag|: a negative diagonal preconditions
  // with its true (negative) value instead of falling into the
  // tiny-positive branch that used to divide by it anyway.  The system
  // [ -2 0; 0 4 ] x = b is symmetric (not SPD) but diagonal, so CG's
  // first step already solves it exactly when preconditioning is sane.
  SparseMatrix a(2);
  a.add(0, 0, -2.0);
  a.add(1, 1, 4.0);
  a.assemble();
  std::vector<double> b = {2.0, 8.0}, x(2, 0.0);
  const CgResult res = solve_pcg(a, b, x, 1e-10, 50);
  // With sane preconditioning z = D^{-1} r is the exact solution, so the
  // very first CG step lands on it (pAp = 14 > 0 keeps the loop alive).
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(x[0], -1.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-9);
}

TEST(SolvePcg, ZeroDiagonalRowFallsBackToIdentityPreconditioning) {
  // A structurally-present but cancelled diagonal row: |0| <= 1e-12, so
  // z = r on that row instead of r / 0 = inf.
  SparseMatrix a(2);
  a.add(0, 0, 1.0);
  a.add(0, 0, -1.0);
  a.add(1, 1, 2.0);
  a.assemble();
  std::vector<double> b = {0.0, 4.0}, x(2, 0.0);
  const CgResult res = solve_pcg(a, b, x, 1e-10, 50);
  EXPECT_TRUE(std::isfinite(x[0]));
  EXPECT_NEAR(x[1], 2.0, 1e-8);
  EXPECT_TRUE(std::isfinite(res.residual));
}

TEST(SparseMatrix, AddAfterAssembleThrows) {
  SparseMatrix a(1);
  a.add(0, 0, 1.0);
  a.assemble();
  EXPECT_THROW(a.add(0, 0, 1.0), std::logic_error);
}

TEST(SparseMatrix, MultiplyBeforeAssembleThrows) {
  SparseMatrix a(1);
  std::vector<double> x = {1.0}, y(1);
  EXPECT_THROW(a.multiply(x, y), std::logic_error);
}

TEST(SparseMatrix, OutOfRangeThrows) {
  SparseMatrix a(2);
  EXPECT_THROW(a.add(2, 0, 1.0), std::logic_error);
}

TEST(SparseMatrix, DiagonalShiftAfterAssembly) {
  SparseMatrix a(2);
  a.add(0, 0, 1.0);
  a.add(1, 1, 1.0);
  a.assemble();
  a.add_to_diagonal(0, 4.0);
  EXPECT_DOUBLE_EQ(a.diagonal()[0], 5.0);
  std::vector<double> x = {1.0, 1.0}, y(2);
  a.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 1.0);
}

TEST(Pcg, SolvesSmallSpdSystem) {
  // Laplacian of a path 0-1-2 with anchors on the ends.
  SparseMatrix a(3);
  const double anchor = 1.0;
  a.add(0, 0, 1.0 + anchor);
  a.add(1, 1, 2.0);
  a.add(2, 2, 1.0 + anchor);
  a.add(0, 1, -1.0);
  a.add(1, 0, -1.0);
  a.add(1, 2, -1.0);
  a.add(2, 1, -1.0);
  a.assemble();
  // Anchors pull node 0 to 0.0 and node 2 to 10.0.
  std::vector<double> b = {0.0, 0.0, 10.0};
  std::vector<double> x(3, 0.0);
  const CgResult r = solve_pcg(a, b, x, 1e-10, 200);
  EXPECT_TRUE(r.converged);
  // Exact solution: x = [2.5, 5, 7.5].
  EXPECT_NEAR(x[0], 2.5, 1e-6);
  EXPECT_NEAR(x[1], 5.0, 1e-6);
  EXPECT_NEAR(x[2], 7.5, 1e-6);
}

TEST(Pcg, ZeroRhsGivesZeroSolution) {
  SparseMatrix a(2);
  a.add(0, 0, 1.0);
  a.add(1, 1, 1.0);
  a.assemble();
  std::vector<double> b = {0.0, 0.0};
  std::vector<double> x = {5.0, -3.0};
  const CgResult r = solve_pcg(a, b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
}

TEST(Pcg, WarmStartConvergesFaster) {
  // 1D Laplacian chain of 50 nodes with end anchors.
  const std::size_t n = 50;
  SparseMatrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    double d = 0.0;
    if (i > 0) {
      a.add(i, i - 1, -1.0);
      d += 1.0;
    }
    if (i + 1 < n) {
      a.add(i, i + 1, -1.0);
      d += 1.0;
    }
    if (i == 0 || i + 1 == n) d += 1.0;  // anchor
    a.add(i, i, d);
  }
  a.assemble();
  std::vector<double> b(n, 0.0);
  b[n - 1] = 100.0;

  std::vector<double> cold(n, 0.0);
  const CgResult r_cold = solve_pcg(a, b, cold, 1e-10, 500);
  ASSERT_TRUE(r_cold.converged);

  std::vector<double> warm = cold;  // exact solution as start
  const CgResult r_warm = solve_pcg(a, b, warm, 1e-10, 500);
  EXPECT_TRUE(r_warm.converged);
  EXPECT_LT(r_warm.iterations, r_cold.iterations);
}

TEST(Pcg, DimensionMismatchThrows) {
  SparseMatrix a(2);
  a.add(0, 0, 1.0);
  a.add(1, 1, 1.0);
  a.assemble();
  std::vector<double> b = {1.0};
  std::vector<double> x(2);
  EXPECT_THROW((void)solve_pcg(a, b, x), std::logic_error);
}

TEST(Pcg, LargeLaplacianConverges) {
  // 2D grid Laplacian 30x30 with a corner anchor: ~900 unknowns.
  const std::size_t side = 30, n = side * side;
  SparseMatrix a(n);
  auto id = [side](std::size_t r, std::size_t c) { return r * side + c; };
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      double d = 0.0;
      const std::size_t i = id(r, c);
      if (r > 0) { a.add(i, id(r - 1, c), -1.0); d += 1.0; }
      if (r + 1 < side) { a.add(i, id(r + 1, c), -1.0); d += 1.0; }
      if (c > 0) { a.add(i, id(r, c - 1), -1.0); d += 1.0; }
      if (c + 1 < side) { a.add(i, id(r, c + 1), -1.0); d += 1.0; }
      if (i == 0) d += 1.0;
      a.add(i, i, d);
    }
  }
  a.assemble();
  std::vector<double> b(n, 0.01);
  std::vector<double> x(n, 0.0);
  const CgResult r = solve_pcg(a, b, x, 1e-8, 2000);
  EXPECT_TRUE(r.converged);
}

}  // namespace
}  // namespace gtl
