#include "place/congestion.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace gtl {
namespace {

TEST(Congestion, UniformNetSpreadsDemand) {
  // One net spanning the whole die: every tile gets some demand.
  const Netlist nl = testing::make_netlist(2, {{0, 1}});
  const std::vector<double> x = {0.5, 9.5};
  const std::vector<double> y = {0.5, 9.5};
  const Die die{10.0, 10.0, 1.0};
  CongestionConfig cfg;
  cfg.tiles_x = 4;
  cfg.tiles_y = 4;
  const CongestionMap m = estimate_congestion(nl, x, y, die, cfg);
  for (std::size_t ty = 0; ty < 4; ++ty) {
    for (std::size_t tx = 0; tx < 4; ++tx) {
      EXPECT_GT(m.demand[ty * 4 + tx], 0.0);
    }
  }
}

TEST(Congestion, LocalNetConcentratesDemand) {
  const Netlist nl = testing::make_netlist(2, {{0, 1}});
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {1.0, 2.0};
  const Die die{10.0, 10.0, 1.0};
  CongestionConfig cfg;
  cfg.tiles_x = 4;
  cfg.tiles_y = 4;
  const CongestionMap m = estimate_congestion(nl, x, y, die, cfg);
  // All demand in the lower-left tile.
  EXPECT_GT(m.demand[0], 0.0);
  EXPECT_DOUBLE_EQ(m.demand[15], 0.0);
}

TEST(Congestion, DemandScalesWithNetCount) {
  NetlistBuilder nb;
  nb.add_cell();
  nb.add_cell();
  for (int i = 0; i < 5; ++i) nb.add_net({CellId{0}, CellId{1}});
  const Netlist nl5 = nb.build();

  const Netlist nl1 = testing::make_netlist(2, {{0, 1}});
  const std::vector<double> x = {1.0, 3.0};
  const std::vector<double> y = {1.0, 3.0};
  const Die die{8.0, 8.0, 1.0};
  CongestionConfig cfg;
  cfg.tiles_x = 2;
  cfg.tiles_y = 2;
  const auto m1 = estimate_congestion(nl1, x, y, die, cfg);
  const auto m5 = estimate_congestion(nl5, x, y, die, cfg);
  EXPECT_NEAR(m5.demand[0], 5.0 * m1.demand[0], 1e-9);
}

TEST(Congestion, HugeNetsSkipped) {
  NetlistBuilder nb;
  std::vector<CellId> pins;
  for (int i = 0; i < 100; ++i) pins.push_back(nb.add_cell());
  nb.add_net(pins);
  const Netlist nl = nb.build();
  std::vector<double> x(100), y(100);
  for (int i = 0; i < 100; ++i) {
    x[i] = static_cast<double>(i % 10) + 0.5;
    y[i] = static_cast<double>(i / 10) + 0.5;
  }
  const Die die{10.0, 10.0, 1.0};
  CongestionConfig cfg;
  cfg.max_routed_net = 64;
  const CongestionMap m = estimate_congestion(nl, x, y, die, cfg);
  for (const double d : m.demand) EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(Congestion, UtilizationUsesCapacity) {
  const Netlist nl = testing::make_netlist(2, {{0, 1}});
  const std::vector<double> x = {0.0, 4.0};
  const std::vector<double> y = {0.5, 0.5};
  const Die die{4.0, 4.0, 1.0};
  CongestionConfig lo, hi;
  lo.tiles_x = hi.tiles_x = 2;
  lo.tiles_y = hi.tiles_y = 2;
  lo.capacity_per_area = 0.5;
  hi.capacity_per_area = 2.0;
  const auto ml = estimate_congestion(nl, x, y, die, lo);
  const auto mh = estimate_congestion(nl, x, y, die, hi);
  EXPECT_NEAR(ml.utilization(0, 0), 4.0 * mh.utilization(0, 0), 1e-9);
}

TEST(Congestion, ReportCountsCongestedNets) {
  // Two nets: one crossing a congested region, one in a quiet corner.
  NetlistBuilder nb;
  for (int i = 0; i < 6; ++i) nb.add_cell();
  // Hotspot: several coincident nets in the lower-left tile.
  nb.add_net({CellId{0}, CellId{1}});
  nb.add_net({CellId{0}, CellId{1}});
  nb.add_net({CellId{0}, CellId{1}});
  nb.add_net({CellId{0}, CellId{1}});
  // Quiet net in upper-right.
  nb.add_net({CellId{4}, CellId{5}});
  const Netlist nl = nb.build();
  const std::vector<double> x = {0.2, 1.8, 0, 0, 8.2, 9.8};
  const std::vector<double> y = {0.2, 1.8, 0, 0, 8.2, 9.8};
  const Die die{10.0, 10.0, 1.0};
  CongestionConfig cfg;
  cfg.tiles_x = 5;
  cfg.tiles_y = 5;
  cfg.capacity_per_area = 0.3;  // low capacity -> hotspot trips 100%
  const CongestionMap m = estimate_congestion(nl, x, y, die, cfg);
  const CongestionReport rep = analyze_congestion(m, nl, x, y, cfg);
  EXPECT_EQ(rep.nets_total, 5u);
  EXPECT_GE(rep.nets_through_full, 4u);   // the 4 hotspot nets
  EXPECT_GE(rep.nets_through_90, rep.nets_through_full);
  EXPECT_GT(rep.max_tile_utilization, 1.0);
  EXPECT_GT(rep.full_tiles, 0u);
  EXPECT_GT(rep.avg_congestion_worst20, 0.0);
}

TEST(Congestion, EmptyGridThrows) {
  const Netlist nl = testing::make_netlist(2, {{0, 1}});
  const std::vector<double> x = {0, 1}, y = {0, 1};
  const Die die{4.0, 4.0, 1.0};
  CongestionConfig cfg;
  cfg.tiles_x = 0;
  EXPECT_THROW((void)estimate_congestion(nl, x, y, die, cfg),
               std::logic_error);
}

TEST(Congestion, MaxUtilizationMatchesManualScan) {
  const Netlist nl = testing::make_netlist(2, {{0, 1}});
  const std::vector<double> x = {0.5, 3.5};
  const std::vector<double> y = {0.5, 3.5};
  const Die die{4.0, 4.0, 1.0};
  CongestionConfig cfg;
  cfg.tiles_x = 2;
  cfg.tiles_y = 2;
  const CongestionMap m = estimate_congestion(nl, x, y, die, cfg);
  double manual = 0.0;
  for (std::size_t t = 0; t < 4; ++t) {
    manual = std::max(manual, m.demand[t] / m.capacity_per_tile);
  }
  EXPECT_DOUBLE_EQ(m.max_utilization(), manual);
}

}  // namespace
}  // namespace gtl
