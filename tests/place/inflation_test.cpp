#include "place/inflation.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace gtl {
namespace {

TEST(Inflation, ScalesSelectedCellWidths) {
  const Netlist nl = testing::make_grid3x3();
  const std::vector<CellId> gtl = {0, 4, 8};
  const Netlist inflated = inflate_cells(nl, gtl, 4.0);
  EXPECT_DOUBLE_EQ(inflated.cell_width(0), 4.0);
  EXPECT_DOUBLE_EQ(inflated.cell_width(4), 4.0);
  EXPECT_DOUBLE_EQ(inflated.cell_width(1), 1.0);
  EXPECT_DOUBLE_EQ(inflated.cell_height(0), 1.0);  // height unchanged
  EXPECT_DOUBLE_EQ(inflated.cell_area(0), 4.0 * nl.cell_area(0));
}

TEST(Inflation, PreservesConnectivity) {
  const Netlist nl = testing::make_two_cliques();
  const std::vector<CellId> gtl = {0, 1, 2, 3};
  const Netlist inflated = inflate_cells(nl, gtl, 4.0);
  ASSERT_EQ(inflated.num_nets(), nl.num_nets());
  ASSERT_EQ(inflated.num_pins(), nl.num_pins());
  for (NetId e = 0; e < nl.num_nets(); ++e) {
    const auto a = nl.pins_of(e);
    const auto b = inflated.pins_of(e);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(Inflation, FixedCellsNeverInflated) {
  NetlistBuilder nb;
  nb.add_cell("pad", 2.0, 1.0, true);
  nb.add_cell("gate", 1.0, 1.0);
  nb.add_net({CellId{0}, CellId{1}});
  const Netlist nl = nb.build();
  const std::vector<CellId> all = {0, 1};
  const Netlist inflated = inflate_cells(nl, all, 4.0);
  EXPECT_DOUBLE_EQ(inflated.cell_width(0), 2.0);  // pad untouched
  EXPECT_DOUBLE_EQ(inflated.cell_width(1), 4.0);
}

TEST(Inflation, PreservesNames) {
  NetlistBuilder nb;
  nb.add_cell("alpha");
  nb.add_cell("beta");
  nb.add_net({CellId{0}, CellId{1}});
  const Netlist nl = nb.build();
  const Netlist inflated = inflate_cells(nl, std::vector<CellId>{0}, 2.0);
  EXPECT_EQ(inflated.cell_name(0), "alpha");
  EXPECT_TRUE(inflated.find_cell("beta").has_value());
}

TEST(Inflation, InvalidFactorThrows) {
  const Netlist nl = testing::make_grid3x3();
  EXPECT_THROW((void)inflate_cells(nl, std::vector<CellId>{0}, 0.0),
               std::logic_error);
}

TEST(Inflation, OutOfRangeCellThrows) {
  const Netlist nl = testing::make_grid3x3();
  EXPECT_THROW((void)inflate_cells(nl, std::vector<CellId>{99}, 2.0),
               std::logic_error);
}

TEST(Inflation, EmptySelectionIsIdentity) {
  const Netlist nl = testing::make_grid3x3();
  const Netlist same = inflate_cells(nl, {}, 4.0);
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    EXPECT_DOUBLE_EQ(same.cell_width(c), nl.cell_width(c));
  }
}

}  // namespace
}  // namespace gtl
