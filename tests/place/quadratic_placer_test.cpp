#include "place/quadratic_placer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graphgen/synthetic_circuit.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace gtl {
namespace {

/// Small circuit fixture with pads.
SyntheticCircuit small_circuit(std::uint64_t seed = 1,
                               std::uint32_t cells = 2'000) {
  SyntheticCircuitConfig cfg;
  cfg.num_cells = cells;
  cfg.num_pads = 16;
  StructureSpec s;
  s.size = 200;
  s.center_x = 0.5;
  s.center_y = 0.8;
  cfg.structures.push_back(s);
  Rng rng(seed);
  return generate_synthetic_circuit(cfg, rng);
}

PlacerConfig quick_config(const SyntheticCircuit& c) {
  PlacerConfig cfg;
  cfg.die = {c.die_width, c.die_height, 1.0};
  cfg.spreading_iterations = 12;
  cfg.cg_max_iterations = 150;
  cfg.cg_tolerance = 1e-5;
  return cfg;
}

TEST(Hpwl, MatchesHandComputation) {
  const Netlist nl = testing::make_netlist(3, {{0, 1}, {1, 2}});
  const std::vector<double> x = {0.0, 3.0, 5.0};
  const std::vector<double> y = {0.0, 4.0, 0.0};
  // Net {0,1}: 3 + 4 = 7; net {1,2}: 2 + 4 = 6.
  EXPECT_DOUBLE_EQ(total_hpwl(nl, x, y), 13.0);
}

TEST(Hpwl, SinglePinNetContributesZero) {
  const Netlist nl = testing::make_netlist(2, {{0}, {0, 1}});
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(total_hpwl(nl, x, y), 1.0);
}

TEST(QuadraticPlacer, CellsEndUpInsideDie) {
  const SyntheticCircuit c = small_circuit();
  const Placement p =
      place_quadratic(c.netlist, c.hint_x, c.hint_y, quick_config(c));
  for (CellId i = 0; i < c.netlist.num_cells(); ++i) {
    if (c.netlist.is_fixed(i)) continue;
    EXPECT_GE(p.x[i], -1e-9);
    EXPECT_LE(p.x[i], c.die_width + 1e-9);
    EXPECT_GE(p.y[i], -1e-9);
    EXPECT_LE(p.y[i], c.die_height + 1e-9);
  }
}

TEST(QuadraticPlacer, FixedCellsDoNotMove) {
  const SyntheticCircuit c = small_circuit();
  const Placement p =
      place_quadratic(c.netlist, c.hint_x, c.hint_y, quick_config(c));
  for (CellId i = 0; i < c.netlist.num_cells(); ++i) {
    if (!c.netlist.is_fixed(i)) continue;
    EXPECT_DOUBLE_EQ(p.x[i], c.hint_x[i]);
    EXPECT_DOUBLE_EQ(p.y[i], c.hint_y[i]);
  }
}

TEST(QuadraticPlacer, BetterThanRandomPlacement) {
  const SyntheticCircuit c = small_circuit();
  const Placement p =
      place_quadratic(c.netlist, c.hint_x, c.hint_y, quick_config(c));

  // Random placement baseline.
  Rng rng(99);
  std::vector<double> rx = c.hint_x, ry = c.hint_y;
  for (CellId i = 0; i < c.netlist.num_cells(); ++i) {
    if (c.netlist.is_fixed(i)) continue;
    rx[i] = rng.next_double() * c.die_width;
    ry[i] = rng.next_double() * c.die_height;
  }
  const double random_hpwl = total_hpwl(c.netlist, rx, ry);
  EXPECT_LT(p.hpwl, random_hpwl * 0.5)
      << "placer should beat random by far";
}

TEST(QuadraticPlacer, ConnectedCellsPlacedClose) {
  // The behavioral property the paper depends on: the planted dense
  // structure gets pulled into a tight clot (Fig. 4).
  const SyntheticCircuit c = small_circuit();
  const Placement p =
      place_quadratic(c.netlist, c.hint_x, c.hint_y, quick_config(c));

  const auto& gtl = c.planted[0];
  double mean_x = 0.0, mean_y = 0.0;
  for (const CellId i : gtl) {
    mean_x += p.x[i];
    mean_y += p.y[i];
  }
  mean_x /= static_cast<double>(gtl.size());
  mean_y /= static_cast<double>(gtl.size());
  double rms = 0.0;
  for (const CellId i : gtl) {
    const double dx = p.x[i] - mean_x, dy = p.y[i] - mean_y;
    rms += dx * dx + dy * dy;
  }
  rms = std::sqrt(rms / static_cast<double>(gtl.size()));
  const double die_diag =
      std::sqrt(c.die_width * c.die_width + c.die_height * c.die_height);
  // GTL spread is a small fraction of the die (10% of the cells would
  // occupy ~31% of the diagonal if uniform).
  EXPECT_LT(rms, die_diag * 0.2);
}

TEST(QuadraticPlacer, LegalizationSnapsToRows) {
  const SyntheticCircuit c = small_circuit();
  PlacerConfig cfg = quick_config(c);
  cfg.legalize = true;
  const Placement p = place_quadratic(c.netlist, c.hint_x, c.hint_y, cfg);
  std::size_t on_row = 0, movable = 0;
  for (CellId i = 0; i < c.netlist.num_cells(); ++i) {
    if (c.netlist.is_fixed(i)) continue;
    ++movable;
    const double rem = std::fmod(p.y[i] - 0.5 * cfg.die.row_height,
                                 cfg.die.row_height);
    if (std::abs(rem) < 1e-6 ||
        std::abs(rem - cfg.die.row_height) < 1e-6) {
      ++on_row;
    }
  }
  // Nearly all cells legalized (full rows may leave stragglers).
  EXPECT_GT(static_cast<double>(on_row), 0.99 * static_cast<double>(movable));
}

TEST(QuadraticPlacer, SpreadingReducesPeakDensity) {
  const SyntheticCircuit c = small_circuit();
  PlacerConfig no_spread = quick_config(c);
  no_spread.spreading_iterations = 0;
  no_spread.legalize = false;
  PlacerConfig spread = quick_config(c);
  spread.legalize = false;

  const Placement p0 =
      place_quadratic(c.netlist, c.hint_x, c.hint_y, no_spread);
  const Placement p1 = place_quadratic(c.netlist, c.hint_x, c.hint_y, spread);

  // Peak bin occupancy over a 16x16 grid.
  auto peak = [&](const Placement& p) {
    std::vector<double> bin(16 * 16, 0.0);
    for (CellId i = 0; i < c.netlist.num_cells(); ++i) {
      if (c.netlist.is_fixed(i)) continue;
      const auto bx = std::min<std::size_t>(
          15, static_cast<std::size_t>(p.x[i] / c.die_width * 16));
      const auto by = std::min<std::size_t>(
          15, static_cast<std::size_t>(p.y[i] / c.die_height * 16));
      bin[by * 16 + bx] += c.netlist.cell_area(i);
    }
    return *std::max_element(bin.begin(), bin.end());
  };
  EXPECT_LT(peak(p1), peak(p0));
}

TEST(QuadraticPlacer, DegenerateDieThrows) {
  const SyntheticCircuit c = small_circuit();
  PlacerConfig cfg = quick_config(c);
  cfg.die.width = 0.0;
  EXPECT_THROW(
      (void)place_quadratic(c.netlist, c.hint_x, c.hint_y, cfg),
      std::invalid_argument);
}

TEST(QuadraticPlacer, WrongArraySizesThrow) {
  const SyntheticCircuit c = small_circuit();
  const std::vector<double> short_vec(3, 0.0);
  EXPECT_THROW((void)place_quadratic(c.netlist, short_vec, c.hint_y,
                                     quick_config(c)),
               std::logic_error);
}

TEST(QuadraticPlacer, DeterministicOutput) {
  const SyntheticCircuit c = small_circuit();
  const Placement a =
      place_quadratic(c.netlist, c.hint_x, c.hint_y, quick_config(c));
  const Placement b =
      place_quadratic(c.netlist, c.hint_x, c.hint_y, quick_config(c));
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
}

}  // namespace
}  // namespace gtl
