#include "order/linear_ordering.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <unordered_set>

#include "graphgen/planted_graph.hpp"
#include "metrics/group_connectivity.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace gtl {
namespace {

/// Reference gain of one frontier cell: exact connection sum.
double brute_force_conn(const Netlist& nl, const GroupConnectivity& group,
                        CellId v) {
  double conn = 0.0;
  for (const NetId e : nl.nets_of(v)) {
    if (nl.net_size(e) < 2) continue;
    if (group.pins_in(e) == 0) continue;
    conn += 1.0 / static_cast<double>(group.pins_out(e) + 1);
  }
  return conn;
}

/// Reference implementation of one Phase I step: the set of admissible
/// winners — every frontier cell whose connection gain is within
/// floating-point noise of the best.  The engine accumulates gains
/// incrementally, so mathematically equal gains can differ by an ulp from
/// a fresh summation; that perturbs *tie-breaks* (which the paper leaves
/// unspecified) but never the greedy's max-gain property, which is what
/// this reference checks.  Exact-arithmetic tie-breaking is pinned
/// separately by the MinCutBreaksTies test on 1/2-representable weights.
std::set<CellId> brute_force_best_set(const Netlist& nl,
                                      const GroupConnectivity& group) {
  constexpr double kEps = 1e-9;
  double best_conn = -1.0;
  for (CellId v = 0; v < nl.num_cells(); ++v) {
    if (group.contains(v) || nl.is_fixed(v)) continue;
    best_conn = std::max(best_conn, brute_force_conn(nl, group, v));
  }
  std::set<CellId> winners;
  for (CellId v = 0; v < nl.num_cells(); ++v) {
    if (group.contains(v) || nl.is_fixed(v)) continue;
    const double conn = brute_force_conn(nl, group, v);
    if (conn > 0.0 && conn >= best_conn - kEps) winners.insert(v);
  }
  return winners;
}

TEST(LinearOrdering, StartsAtSeed) {
  const Netlist nl = testing::make_grid3x3();
  OrderingEngine engine(nl, {.max_length = 9, .large_net_threshold = 0});
  const LinearOrdering ord = engine.grow(4);
  ASSERT_FALSE(ord.cells.empty());
  EXPECT_EQ(ord.cells[0], 4u);
  EXPECT_EQ(ord.seed, 4u);
}

TEST(LinearOrdering, CoversConnectedGraph) {
  const Netlist nl = testing::make_grid3x3();
  OrderingEngine engine(nl, {.max_length = 100, .large_net_threshold = 0});
  const LinearOrdering ord = engine.grow(0);
  EXPECT_EQ(ord.cells.size(), 9u);
  std::set<CellId> unique(ord.cells.begin(), ord.cells.end());
  EXPECT_EQ(unique.size(), 9u);  // no repeats
}

TEST(LinearOrdering, RespectsMaxLength) {
  const Netlist nl = testing::make_grid3x3();
  OrderingEngine engine(nl, {.max_length = 5, .large_net_threshold = 0});
  const LinearOrdering ord = engine.grow(0);
  EXPECT_EQ(ord.cells.size(), 5u);
}

TEST(LinearOrdering, StopsAtDisconnectedComponent) {
  // Two disjoint edges; ordering from 0 can only reach {0, 1}.
  const Netlist nl = testing::make_netlist(4, {{0, 1}, {2, 3}});
  OrderingEngine engine(nl, {.max_length = 10, .large_net_threshold = 0});
  const LinearOrdering ord = engine.grow(0);
  EXPECT_EQ(ord.cells.size(), 2u);
}

TEST(LinearOrdering, PrefixStatsMatchGroupConnectivity) {
  PlantedGraphConfig cfg;
  cfg.num_cells = 600;
  cfg.gtls.push_back({80, 1});
  Rng rng(17);
  const PlantedGraph pg = generate_planted_graph(cfg, rng);

  OrderingEngine engine(pg.netlist,
                        {.max_length = 200, .large_net_threshold = 0});
  const LinearOrdering ord = engine.grow(pg.gtl_members[0][0]);

  GroupConnectivity group(pg.netlist);
  for (std::size_t k = 0; k < ord.cells.size(); ++k) {
    group.add(ord.cells[k]);
    ASSERT_EQ(group.cut(), ord.prefix_cut[k]) << "prefix " << k + 1;
    ASSERT_EQ(group.pins_in_group(), ord.prefix_pins[k]) << "prefix " << k + 1;
  }
}

TEST(LinearOrdering, ExactEngineMatchesBruteForce) {
  // With the large-net trick disabled the engine must reproduce the
  // reference greedy exactly, step by step.
  PlantedGraphConfig cfg;
  cfg.num_cells = 300;
  cfg.gtls.push_back({40, 1});
  Rng rng(23);
  const PlantedGraph pg = generate_planted_graph(cfg, rng);

  OrderingEngine engine(pg.netlist,
                        {.max_length = 120, .large_net_threshold = 0});
  const CellId seed = pg.gtl_members[0][5];
  const LinearOrdering ord = engine.grow(seed);

  GroupConnectivity group(pg.netlist);
  group.add(seed);
  for (std::size_t k = 1; k < ord.cells.size(); ++k) {
    const auto winners = brute_force_best_set(pg.netlist, group);
    ASSERT_TRUE(winners.count(ord.cells[k]))
        << "step " << k << ": engine chose " << ord.cells[k];
    group.add(ord.cells[k]);
  }
}

TEST(LinearOrdering, LargeNetThresholdSkipsHugeNets) {
  // A 30-pin net above the threshold must not pull its pins into the
  // frontier; the chain below keeps growing instead.
  NetlistBuilder nb;
  std::vector<CellId> big;
  for (int i = 0; i < 30; ++i) big.push_back(nb.add_cell());
  // Chain of 5 extra cells hanging off big[0].
  std::vector<CellId> chain = {big[0]};
  for (int i = 0; i < 5; ++i) chain.push_back(nb.add_cell());
  nb.add_net(big);
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    nb.add_net({chain[i], chain[i + 1]});
  }
  const Netlist nl = nb.build();

  OrderingEngine skip(nl, {.max_length = 40, .large_net_threshold = 20});
  const LinearOrdering ord = skip.grow(big[0]);
  // Only the chain is reachable: the big net is never activated.
  EXPECT_EQ(ord.cells.size(), chain.size());

  OrderingEngine exact(nl, {.max_length = 40, .large_net_threshold = 0});
  const LinearOrdering ord2 = exact.grow(big[0]);
  EXPECT_EQ(ord2.cells.size(), 35u);  // everything reachable
}

TEST(LinearOrdering, PrefixCutIsExactEvenWithThreshold) {
  // The reported T(C_k) must be exact regardless of the gain skip.
  NetlistBuilder nb;
  std::vector<CellId> big;
  for (int i = 0; i < 25; ++i) big.push_back(nb.add_cell());
  nb.add_net(big);
  for (int i = 0; i + 1 < 25; ++i) {
    nb.add_net({big[i], big[i + 1]});
  }
  const Netlist nl = nb.build();

  OrderingEngine engine(nl, {.max_length = 25, .large_net_threshold = 20});
  const LinearOrdering ord = engine.grow(big[0]);
  GroupConnectivity group(nl);
  for (std::size_t k = 0; k < ord.cells.size(); ++k) {
    group.add(ord.cells[k]);
    ASSERT_EQ(group.cut(), ord.prefix_cut[k]);
  }
}

TEST(LinearOrdering, PrefersStrongerConnection) {
  // Cell 1 shares two nets with the seed, cell 2 only one: 1 wins.
  const Netlist nl =
      testing::make_netlist(3, {{0, 1}, {0, 1}, {0, 2}});
  OrderingEngine engine(nl, {.max_length = 3, .large_net_threshold = 0});
  const LinearOrdering ord = engine.grow(0);
  ASSERT_GE(ord.cells.size(), 2u);
  EXPECT_EQ(ord.cells[1], 1u);
}

TEST(LinearOrdering, NetMostlyInsideWeighsMore) {
  // Net A = {0,1}: lambda = 1 outside -> weight 1/2.
  // Net B = {0,2,3,4}: lambda = 3 -> weight 1/4 for each outside pin.
  const Netlist nl = testing::make_netlist(5, {{0, 1}, {0, 2, 3, 4}});
  OrderingEngine engine(nl, {.max_length = 5, .large_net_threshold = 0});
  const LinearOrdering ord = engine.grow(0);
  ASSERT_GE(ord.cells.size(), 2u);
  EXPECT_EQ(ord.cells[1], 1u);
}

TEST(LinearOrdering, MinCutBreaksTies) {
  // Cells 1 and 2 both connect via one 2-pin net (equal conn weight), but
  // cell 2 drags two extra untouched nets (higher cut delta) -> pick 1.
  const Netlist nl = testing::make_netlist(
      7, {{0, 1}, {0, 2}, {2, 3}, {2, 4}, {1, 5}});
  // conn(1) = conn(2) = 1/2; delta(1) = -1+1 = 0; delta(2) = -1+2 = 1.
  OrderingEngine engine(nl, {.max_length = 2, .large_net_threshold = 0});
  const LinearOrdering ord = engine.grow(0);
  ASSERT_GE(ord.cells.size(), 2u);
  EXPECT_EQ(ord.cells[1], 1u);
}

TEST(LinearOrdering, FixedSeedThrows) {
  NetlistBuilder nb;
  nb.add_cell("pad", 1, 1, true);
  nb.add_cell("gate");
  nb.add_net({CellId{0}, CellId{1}});
  const Netlist nl = nb.build();
  OrderingEngine engine(nl, {});
  EXPECT_THROW((void)engine.grow(0), std::invalid_argument);
}

TEST(LinearOrdering, FixedCellsNeverAbsorbed) {
  NetlistBuilder nb;
  const CellId pad = nb.add_cell("pad", 1, 1, true);
  std::vector<CellId> gates;
  for (int i = 0; i < 5; ++i) gates.push_back(nb.add_cell());
  for (std::size_t i = 0; i + 1 < gates.size(); ++i) {
    nb.add_net({gates[i], gates[i + 1]});
  }
  nb.add_net({pad, gates[0]});
  const Netlist nl = nb.build();

  OrderingEngine engine(nl, {.max_length = 10, .large_net_threshold = 0});
  const LinearOrdering ord = engine.grow(gates[0]);
  EXPECT_EQ(ord.cells.size(), 5u);
  EXPECT_EQ(std::count(ord.cells.begin(), ord.cells.end(), pad), 0);
}

TEST(LinearOrdering, EngineReusableAcrossRuns) {
  const Netlist nl = testing::make_grid3x3();
  OrderingEngine engine(nl, {.max_length = 9, .large_net_threshold = 0});
  const LinearOrdering a1 = engine.grow(0);
  (void)engine.grow(8);  // perturb internal state
  const LinearOrdering a2 = engine.grow(0);
  EXPECT_EQ(a1.cells, a2.cells);
  EXPECT_EQ(a1.prefix_cut, a2.prefix_cut);
}

TEST(LinearOrdering, StaysInsidePlantedGtlUntilExhausted) {
  // The core behavioral property Phase I needs: seeded inside a planted
  // GTL, the ordering absorbs (nearly) the whole GTL before leaving it.
  PlantedGraphConfig cfg;
  cfg.num_cells = 5'000;
  cfg.gtls.push_back({400, 1});
  Rng rng(31);
  const PlantedGraph pg = generate_planted_graph(cfg, rng);
  const std::unordered_set<CellId> truth(pg.gtl_members[0].begin(),
                                         pg.gtl_members[0].end());

  OrderingEngine engine(pg.netlist,
                        {.max_length = 600, .large_net_threshold = 20});
  const LinearOrdering ord = engine.grow(pg.gtl_members[0][13]);
  ASSERT_GE(ord.cells.size(), 400u);
  std::size_t inside_in_first_400 = 0;
  for (std::size_t k = 0; k < 400; ++k) {
    inside_in_first_400 += truth.count(ord.cells[k]);
  }
  // At least 95% of the first |GTL| cells belong to the GTL.
  EXPECT_GE(inside_in_first_400, 380u);
}


TEST(LinearOrdering, MinCutFirstChangesCriterionOrder) {
  // The paper's §3.2.1 counterexample: seed 0 has a weakly connected
  // neighbor (one 2-pin net, zero cut delta because its net would be
  // absorbed... construct: cell 1 via one 2-pin net and no other nets
  // (delta -1); cell 2 via two 2-pin nets but with two extra untouched
  // nets (delta 0).  Connection-first picks 2 (conn 1.0 > 0.5); min-cut
  // first picks 1 (delta -1 < 0).
  const Netlist nl = testing::make_netlist(
      5, {{0, 1}, {0, 2}, {0, 2}, {2, 3}, {2, 4}});
  OrderingEngine conn_first(
      nl, {.max_length = 2, .large_net_threshold = 0, .min_cut_first = false});
  OrderingEngine cut_first(
      nl, {.max_length = 2, .large_net_threshold = 0, .min_cut_first = true});
  EXPECT_EQ(conn_first.grow(0).cells[1], 2u);
  EXPECT_EQ(cut_first.grow(0).cells[1], 1u);
}

TEST(LinearOrdering, MinCutFirstStillCoversGraph) {
  const Netlist nl = testing::make_grid3x3();
  OrderingEngine engine(
      nl, {.max_length = 9, .large_net_threshold = 0, .min_cut_first = true});
  const LinearOrdering ord = engine.grow(0);
  EXPECT_EQ(ord.cells.size(), 9u);
  GroupConnectivity group(nl);
  for (std::size_t k = 0; k < ord.cells.size(); ++k) {
    group.add(ord.cells[k]);
    ASSERT_EQ(group.cut(), ord.prefix_cut[k]);
  }
}

}  // namespace
}  // namespace gtl
