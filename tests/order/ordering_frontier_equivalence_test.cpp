// Equivalence suite for the indexed-heap frontier: grows orderings on
// random planted graphs with the production OrderingEngine (position-
// indexed 4-ary heap) and with a reference engine that keeps the frontier
// in a std::set (the original implementation, reproduced verbatim below),
// and asserts byte-identical LinearOrdering output — cells, prefix_cut
// and prefix_pins — across graph seeds, growth seeds, large-net
// thresholds and both tie-break modes.  Both frontier structures order
// keys by the same strict total order (conn desc, cut_delta asc, cell
// asc), so any divergence is a bug in one of the two.

#include "order/linear_ordering.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "graphgen/planted_graph.hpp"
#include "metrics/group_connectivity.hpp"
#include "util/rng.hpp"

namespace gtl {
namespace {

struct NetContribution {
  double conn = 0.0;
  std::int32_t cut_delta = 0;
};

NetContribution contribution(std::uint32_t net_size, std::uint32_t k,
                             std::uint32_t threshold) {
  NetContribution out;
  if (net_size < 2) return out;
  const std::uint32_t lambda = net_size - k;
  const bool active = threshold == 0 || lambda < threshold;
  if (!active) return out;
  if (k > 0) out.conn = 1.0 / static_cast<double>(lambda + 1);
  if (k == 0) {
    out.cut_delta = 1;
  } else if (k == net_size - 1) {
    out.cut_delta = -1;
  }
  return out;
}

/// The pre-indexed-heap OrderingEngine: identical update logic, frontier
/// kept in an ordered node-based std::set.
class SetFrontierEngine {
 public:
  SetFrontierEngine(const Netlist& nl, OrderingConfig cfg)
      : nl_(&nl),
        cfg_(cfg),
        conn_(nl.num_cells(), 0.0),
        cut_delta_(nl.num_cells(), 0),
        state_(nl.num_cells(), 0),
        pins_in_(nl.num_nets(), 0),
        frontier_(Compare{cfg.min_cut_first}) {}

  LinearOrdering grow(CellId seed) {
    for (const CellId c : touched_cells_) {
      conn_[c] = 0.0;
      cut_delta_[c] = 0;
      state_[c] = 0;
    }
    touched_cells_.clear();
    for (const NetId e : touched_nets_) pins_in_[e] = 0;
    touched_nets_.clear();
    frontier_.clear();
    cut_ = 0;
    pins_in_group_ = 0;

    LinearOrdering out;
    out.seed = seed;
    const std::size_t z =
        std::min<std::size_t>(cfg_.max_length, nl_->num_movable());
    absorb(seed);
    out.cells.push_back(seed);
    out.prefix_cut.push_back(cut_);
    out.prefix_pins.push_back(pins_in_group_);
    while (out.cells.size() < z && !frontier_.empty()) {
      const CellId u = frontier_.begin()->cell;
      absorb(u);
      out.cells.push_back(u);
      out.prefix_cut.push_back(cut_);
      out.prefix_pins.push_back(pins_in_group_);
    }
    return out;
  }

 private:
  struct Key {
    double conn;
    std::int32_t cut_delta;
    CellId cell;
  };
  struct Compare {
    bool min_cut_first = false;
    bool operator()(const Key& a, const Key& b) const {
      if (min_cut_first) {
        if (a.cut_delta != b.cut_delta) return a.cut_delta < b.cut_delta;
        if (a.conn != b.conn) return a.conn > b.conn;
      } else {
        if (a.conn != b.conn) return a.conn > b.conn;
        if (a.cut_delta != b.cut_delta) return a.cut_delta < b.cut_delta;
      }
      return a.cell < b.cell;
    }
  };

  void absorb(CellId u) {
    if (state_[u] == 1) {
      frontier_.erase(Key{conn_[u], cut_delta_[u], u});
    }
    if (state_[u] == 0) touched_cells_.push_back(u);
    state_[u] = 2;
    pins_in_group_ += nl_->cell_degree(u);

    const std::uint32_t threshold = cfg_.large_net_threshold;
    for (const NetId e : nl_->nets_of(u)) {
      const std::uint32_t size = nl_->net_size(e);
      const std::uint32_t k_old = pins_in_[e];
      if (k_old == 0) touched_nets_.push_back(e);
      if (size > 1) {
        if (k_old == 0) ++cut_;
        if (k_old + 1 == size) --cut_;
      }
      const NetContribution before = contribution(size, k_old, threshold);
      pins_in_[e] = k_old + 1;
      const NetContribution after = contribution(size, k_old + 1, threshold);
      const bool discover = after.conn != 0.0 || after.cut_delta != 0;
      const bool changed = before.conn != after.conn ||
                           before.cut_delta != after.cut_delta;
      if (!discover && !changed) continue;
      for (const CellId w : nl_->pins_of(e)) {
        if (w == u || state_[w] == 2 || nl_->is_fixed(w)) continue;
        if (state_[w] == 0) {
          touched_cells_.push_back(w);
          state_[w] = 1;
          double conn = 0.0;
          std::int32_t delta = 0;
          for (const NetId f : nl_->nets_of(w)) {
            const NetContribution cf =
                contribution(nl_->net_size(f), pins_in_[f], threshold);
            conn += cf.conn;
            delta += cf.cut_delta;
          }
          conn_[w] = conn;
          cut_delta_[w] = delta;
          frontier_.insert(Key{conn, delta, w});
        } else if (changed) {
          frontier_.erase(Key{conn_[w], cut_delta_[w], w});
          // Left-to-right evaluation, matching the production engine's
          // `conn_[c] + after.conn - before.conn` exactly: a different
          // association rounds differently and perturbs tie-breaks.
          conn_[w] = conn_[w] + after.conn - before.conn;
          cut_delta_[w] = cut_delta_[w] + after.cut_delta - before.cut_delta;
          frontier_.insert(Key{conn_[w], cut_delta_[w], w});
        }
      }
    }
  }

  const Netlist* nl_;
  OrderingConfig cfg_;
  std::vector<double> conn_;
  std::vector<std::int32_t> cut_delta_;
  std::vector<std::uint8_t> state_;
  std::vector<std::uint32_t> pins_in_;
  std::set<Key, Compare> frontier_;
  std::vector<CellId> touched_cells_;
  std::vector<NetId> touched_nets_;
  std::int64_t cut_ = 0;
  std::uint64_t pins_in_group_ = 0;
};

PlantedGraph make_graph(std::uint32_t n, std::uint64_t seed) {
  PlantedGraphConfig cfg;
  cfg.num_cells = n;
  cfg.gtls.push_back({n / 8, 2});
  Rng rng(seed);
  return generate_planted_graph(cfg, rng);
}

void expect_identical(const LinearOrdering& heap_ord,
                      const LinearOrdering& set_ord) {
  ASSERT_EQ(heap_ord.cells.size(), set_ord.cells.size());
  EXPECT_EQ(heap_ord.seed, set_ord.seed);
  EXPECT_EQ(heap_ord.cells, set_ord.cells);
  EXPECT_EQ(heap_ord.prefix_cut, set_ord.prefix_cut);
  EXPECT_EQ(heap_ord.prefix_pins, set_ord.prefix_pins);
}

TEST(OrderingFrontierEquivalence, ByteIdenticalAcrossSeedsAndConfigs) {
  for (const std::uint64_t graph_seed : {1u, 7u, 42u}) {
    const PlantedGraph pg = make_graph(480, graph_seed);
    for (const std::uint32_t threshold : {0u, 3u, 20u}) {
      for (const bool min_cut_first : {false, true}) {
        const OrderingConfig cfg{.max_length = 240,
                                 .large_net_threshold = threshold,
                                 .min_cut_first = min_cut_first};
        OrderingEngine engine(pg.netlist, cfg);
        SetFrontierEngine reference(pg.netlist, cfg);
        Rng rng(graph_seed * 1000 + threshold);
        for (int rep = 0; rep < 4; ++rep) {
          const CellId seed = static_cast<CellId>(
              rng.next_below(pg.netlist.num_cells()));
          if (pg.netlist.is_fixed(seed)) continue;
          expect_identical(engine.grow(seed), reference.grow(seed));
        }
        // Also from inside a planted GTL (the common finder case).
        const CellId gtl_seed = pg.gtl_members[0][0];
        expect_identical(engine.grow(gtl_seed), reference.grow(gtl_seed));
      }
    }
  }
}

TEST(OrderingFrontierEquivalence, EngineReuseStaysIdentical) {
  // Reusing one engine across many grows must match fresh references:
  // the O(touched) reset and the heap's clear() leave no residue.
  const PlantedGraph pg = make_graph(300, 5);
  const OrderingConfig cfg{.max_length = 150, .large_net_threshold = 20};
  OrderingEngine engine(pg.netlist, cfg);
  Rng rng(99);
  for (int rep = 0; rep < 8; ++rep) {
    const CellId seed =
        static_cast<CellId>(rng.next_below(pg.netlist.num_cells()));
    if (pg.netlist.is_fixed(seed)) continue;
    SetFrontierEngine reference(pg.netlist, cfg);
    expect_identical(engine.grow(seed), reference.grow(seed));
  }
}

TEST(OrderingFrontierEquivalence, PrefixCutMatchesGroupConnectivity) {
  // Independent invariant: the reported prefix_cut along the ordering
  // must equal the incremental tracker's exact cut for every prefix.
  const PlantedGraph pg = make_graph(300, 11);
  OrderingEngine engine(pg.netlist,
                        {.max_length = 200, .large_net_threshold = 20});
  const LinearOrdering ord = engine.grow(pg.gtl_members[0][0]);
  GroupConnectivity group(pg.netlist);
  for (std::size_t k = 0; k < ord.cells.size(); ++k) {
    group.add(ord.cells[k]);
    ASSERT_EQ(group.cut(), ord.prefix_cut[k]) << "prefix " << k;
    ASSERT_EQ(group.pins_in_group(), ord.prefix_pins[k]) << "prefix " << k;
  }
}

}  // namespace
}  // namespace gtl
