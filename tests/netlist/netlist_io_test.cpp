// Binary netlist snapshots: exact round trips and the corruption
// rejection table (bad magic, foreign endianness, unknown version/flags,
// truncation at every interesting boundary, inconsistent CSR, checksum
// mismatch).  A snapshot that loads at all must be a bit-exact copy of
// the design that was written — placement and names included.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>

#include "graphgen/synthetic_circuit.hpp"
#include "netlist/netlist_io.hpp"

namespace gtl {
namespace {

namespace fs = std::filesystem;

class NetlistIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tanglefind_snapshot_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::string slurp(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::string s((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
    return s;
  }
  void spit(const fs::path& p, const std::string& bytes) {
    std::ofstream out(p, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  static BookshelfDesign make_design(bool names, bool placement) {
    SyntheticCircuitConfig cfg;
    cfg.num_cells = 500;
    cfg.num_pads = 16;
    cfg.with_names = names;
    StructureSpec s;
    s.size = 50;
    cfg.structures.push_back(s);
    Rng rng(11);
    SyntheticCircuit circuit = generate_synthetic_circuit(cfg, rng);
    BookshelfDesign d;
    d.netlist = std::move(circuit.netlist);
    if (placement) {
      d.x = std::move(circuit.hint_x);
      d.y = std::move(circuit.hint_y);
    }
    return d;
  }

  static void expect_identical(const BookshelfDesign& a,
                               const BookshelfDesign& b) {
    const Netlist& na = a.netlist;
    const Netlist& nb = b.netlist;
    ASSERT_EQ(na.num_cells(), nb.num_cells());
    ASSERT_EQ(na.num_nets(), nb.num_nets());
    ASSERT_EQ(na.num_pins(), nb.num_pins());
    EXPECT_EQ(na.num_movable(), nb.num_movable());
    EXPECT_EQ(na.has_names(), nb.has_names());
    for (CellId c = 0; c < na.num_cells(); ++c) {
      ASSERT_EQ(na.cell_width(c), nb.cell_width(c));
      ASSERT_EQ(na.cell_height(c), nb.cell_height(c));
      ASSERT_EQ(na.is_fixed(c), nb.is_fixed(c));
      ASSERT_EQ(na.cell_name(c), nb.cell_name(c));
      ASSERT_EQ(na.cell_degree(c), nb.cell_degree(c));
    }
    for (NetId e = 0; e < na.num_nets(); ++e) {
      ASSERT_EQ(na.net_name(e), nb.net_name(e));
      const auto pa = na.pins_of(e);
      const auto pb = nb.pins_of(e);
      ASSERT_EQ(pa.size(), pb.size());
      for (std::size_t i = 0; i < pa.size(); ++i) ASSERT_EQ(pa[i], pb[i]);
    }
    ASSERT_EQ(a.x.size(), b.x.size());
    for (std::size_t i = 0; i < a.x.size(); ++i) {
      ASSERT_EQ(a.x[i], b.x[i]);
      ASSERT_EQ(a.y[i], b.y[i]);
    }
  }

  /// Write a valid snapshot, apply `mutate` to its bytes, and expect the
  /// mutant to be rejected with `needle` in the diagnostic.
  void expect_mutant_rejected(
      const std::function<void(std::string*)>& mutate,
      const std::string& needle) {
    const fs::path p = dir_ / "mutant.snap";
    write_snapshot(make_design(true, true), p);
    std::string bytes = slurp(p);
    mutate(&bytes);
    spit(p, bytes);
    BookshelfDesign out;
    const Status st = try_read_snapshot(p, &out);
    ASSERT_FALSE(st.is_ok()) << "corrupted snapshot accepted";
    EXPECT_NE(st.message().find(needle), std::string::npos)
        << "diagnostic '" << st.message() << "' lacks '" << needle << "'";
  }

  fs::path dir_;
};

TEST_F(NetlistIoTest, RoundTripNamedWithPlacement) {
  const BookshelfDesign d = make_design(true, true);
  write_snapshot(d, dir_ / "a.snap");
  expect_identical(d, read_snapshot(dir_ / "a.snap"));
}

TEST_F(NetlistIoTest, RoundTripAnonymousNoPlacement) {
  const BookshelfDesign d = make_design(false, false);
  write_snapshot(d, dir_ / "b.snap");
  const BookshelfDesign back = read_snapshot(dir_ / "b.snap");
  EXPECT_FALSE(back.netlist.has_names());
  EXPECT_TRUE(back.x.empty());
  expect_identical(d, back);
}

TEST_F(NetlistIoTest, RoundTripTinyHandBuiltNetlist) {
  BookshelfDesign d;
  NetlistBuilder nb;
  nb.add_cell("alpha", 2.0, 3.0, true);
  nb.add_cell("", 1.0, 1.0, false);  // empty name among named cells
  nb.add_cell("gamma");
  nb.add_net({CellId{0}, CellId{2}}, "bus");
  nb.add_net({CellId{0}, CellId{1}, CellId{2}});
  d.netlist = nb.build();
  write_snapshot(d, dir_ / "tiny.snap");
  const BookshelfDesign back = read_snapshot(dir_ / "tiny.snap");
  expect_identical(d, back);
  EXPECT_EQ(back.netlist.find_cell("alpha"), std::optional<CellId>(0));
  EXPECT_EQ(back.netlist.net_name(0), "bus");
}

TEST_F(NetlistIoTest, SnapshotOfSnapshotIsByteIdentical) {
  const BookshelfDesign d = make_design(true, true);
  write_snapshot(d, dir_ / "s1.snap");
  write_snapshot(read_snapshot(dir_ / "s1.snap"), dir_ / "s2.snap");
  EXPECT_EQ(slurp(dir_ / "s1.snap"), slurp(dir_ / "s2.snap"));
}

// --- rejection table -------------------------------------------------------

TEST_F(NetlistIoTest, MissingFile) {
  BookshelfDesign out;
  const Status st = try_read_snapshot(dir_ / "nope.snap", &out);
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST_F(NetlistIoTest, BadMagic) {
  expect_mutant_rejected([](std::string* b) { (*b)[0] = 'X'; }, "bad magic");
}

TEST_F(NetlistIoTest, ForeignEndianness) {
  expect_mutant_rejected(
      [](std::string* b) {
        std::swap((*b)[8], (*b)[11]);  // byte-order marker reversed
        std::swap((*b)[9], (*b)[10]);
      },
      "byte-order");
}

TEST_F(NetlistIoTest, UnsupportedVersion) {
  expect_mutant_rejected([](std::string* b) { (*b)[12] = 99; },
                         "unsupported snapshot version");
}

TEST_F(NetlistIoTest, UnknownFlagBits) {
  expect_mutant_rejected([](std::string* b) { (*b)[17] |= 0x80; },
                         "unknown flag bits");
}

TEST_F(NetlistIoTest, TruncatedEverywhere) {
  const fs::path p = dir_ / "trunc.snap";
  write_snapshot(make_design(true, true), p);
  const std::string bytes = slurp(p);
  // Below the header, mid-arrays, and just one byte short.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{17}, std::size_t{63}, std::size_t{64},
        bytes.size() / 2, bytes.size() - 1}) {
    spit(p, bytes.substr(0, keep));
    BookshelfDesign out;
    const Status st = try_read_snapshot(p, &out);
    ASSERT_FALSE(st.is_ok()) << "accepted truncation to " << keep << " bytes";
  }
}

TEST_F(NetlistIoTest, TrailingGarbage) {
  expect_mutant_rejected([](std::string* b) { b->append("extra"); },
                         "does not match");
}

TEST_F(NetlistIoTest, FlippedPayloadByteFailsChecksum) {
  expect_mutant_rejected(
      [](std::string* b) {
        // Flip one bit in a placement coordinate near the file tail
        // (size still matches; only the checksum can catch it).
        (*b)[b->size() - 16] ^= 0x01;
      },
      "checksum mismatch");
}

TEST_F(NetlistIoTest, OversizedCellCountRejectedBeforeAllocation) {
  expect_mutant_rejected(
      [](std::string* b) {
        const std::uint64_t huge = 0x00000001'00000000ull;  // 2^32
        std::memcpy(b->data() + 24, &huge, sizeof(huge));  // num_cells
      },
      "32-bit cell-id limit");
}

TEST_F(NetlistIoTest, DeclaredNameBlobBeyondFileRejected) {
  expect_mutant_rejected(
      [](std::string* b) {
        const std::uint64_t huge = 0x7fffffffull;
        std::memcpy(b->data() + 48, &huge, sizeof(huge));  // cell_name_bytes
      },
      "name blob exceeds");
}

TEST_F(NetlistIoTest, InconsistentOffsetsRejected) {
  // Corrupt net_pin_offset[1] (first offset after the leading 0) to be
  // non-monotonic, and refresh nothing else: the size still matches, the
  // checksum catches it first — so instead rebuild a structurally-bad but
  // checksum-valid file by writing through the public writer is
  // impossible; hand-roll the fix-up: recompute the trailer.
  const fs::path p = dir_ / "csr.snap";
  write_snapshot(make_design(false, false), p);
  std::string bytes = slurp(p);
  // offsets start right after the 64-byte header; offset[1] at +4.
  std::uint32_t evil = 0xffff0000u;
  std::memcpy(bytes.data() + 64 + 4, &evil, sizeof(evil));
  // Recompute FNV-1a over everything but the 8-byte trailer.
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i + 8 < bytes.size(); ++i) {
    h ^= static_cast<unsigned char>(bytes[i]);
    h *= 1099511628211ull;
  }
  std::memcpy(bytes.data() + bytes.size() - 8, &h, sizeof(h));
  spit(p, bytes);
  BookshelfDesign out;
  const Status st = try_read_snapshot(p, &out);
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("net_pin_offset"), std::string::npos)
      << st.message();
}

TEST_F(NetlistIoTest, EmptyDesignRoundTrips) {
  BookshelfDesign d;  // default: zero cells, zero nets
  write_snapshot(d, dir_ / "empty.snap");
  const BookshelfDesign back = read_snapshot(dir_ / "empty.snap");
  EXPECT_EQ(back.netlist.num_cells(), 0u);
  EXPECT_EQ(back.netlist.num_nets(), 0u);
  EXPECT_TRUE(back.x.empty());
}

TEST_F(NetlistIoTest, PlacementSizeMismatchRefusedOnWrite) {
  BookshelfDesign d = make_design(false, false);
  d.x.assign(3, 0.0);
  d.y.assign(3, 0.0);
  const Status st = try_write_snapshot(d, dir_ / "bad.snap");
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gtl
