// Pins the zero-copy Bookshelf scanner byte-identical to the seed parser
// on valid inputs.  The seed implementation (PR 1..4 era:
// getline + istringstream tokenization, stod/stoull numbers) is embedded
// below verbatim as the reference — the same technique the frontier and
// score-curve equivalence tests use for their hot paths.  Every observable
// field must match exactly: CSR spans, exact-double dimensions and
// coordinates, fixed flags, and names.
//
// Also holds the write->read->write fixed-point property: re-writing a
// re-read design reproduces the four Bookshelf files byte for byte.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "graphgen/synthetic_circuit.hpp"
#include "netlist/bookshelf.hpp"

namespace gtl {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Embedded seed parser (reference implementation, verbatim).
// ---------------------------------------------------------------------------
namespace seed_ref {

[[noreturn]] void fail(const std::filesystem::path& file, std::size_t line,
                       const std::string& what) {
  throw std::runtime_error("bookshelf: " + file.string() + ":" +
                           std::to_string(line) + ": " + what);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string t;
  while (is >> t) {
    if (t[0] == '#') break;
    toks.push_back(std::move(t));
  }
  return toks;
}

class LineReader {
 public:
  explicit LineReader(const std::filesystem::path& path)
      : path_(path), in_(path) {
    if (!in_)
      throw std::runtime_error("bookshelf: cannot open " + path.string());
  }

  std::vector<std::string> next() {
    std::string line;
    while (std::getline(in_, line)) {
      ++lineno_;
      auto toks = tokenize(line);
      if (toks.empty()) continue;
      if (toks[0] == "UCLA") continue;  // format header
      return toks;
    }
    return {};
  }

  [[nodiscard]] std::size_t lineno() const { return lineno_; }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
  std::ifstream in_;
  std::size_t lineno_ = 0;
};

double to_double(const LineReader& r, const std::string& s) {
  try {
    return std::stod(s);
  } catch (const std::exception&) {
    fail(r.path(), r.lineno(), "expected number, got '" + s + "'");
  }
}

std::size_t to_size(const LineReader& r, const std::string& s) {
  try {
    return static_cast<std::size_t>(std::stoull(s));
  } catch (const std::exception&) {
    fail(r.path(), r.lineno(), "expected count, got '" + s + "'");
  }
}

struct NodesData {
  std::vector<std::string> names;
  std::vector<double> widths, heights;
  std::vector<std::uint8_t> fixed;
  std::unordered_map<std::string, CellId> index;
};

NodesData read_nodes(const std::filesystem::path& path) {
  LineReader r(path);
  NodesData d;
  std::size_t expected = 0;
  for (auto toks = r.next(); !toks.empty(); toks = r.next()) {
    if (toks[0] == "NumNodes") {
      expected = to_size(r, toks.back());
      d.names.reserve(expected);
      d.widths.reserve(expected);
      d.heights.reserve(expected);
      d.fixed.reserve(expected);
      continue;
    }
    if (toks[0] == "NumTerminals") continue;
    if (toks.size() < 3) fail(path, r.lineno(), "node line needs name w h");
    const bool terminal = toks.size() >= 4 && toks[3] == "terminal";
    d.index.emplace(toks[0], static_cast<CellId>(d.names.size()));
    d.names.push_back(toks[0]);
    d.widths.push_back(std::max(1e-9, to_double(r, toks[1])));
    d.heights.push_back(std::max(1e-9, to_double(r, toks[2])));
    d.fixed.push_back(terminal ? 1 : 0);
  }
  if (expected != 0 && d.names.size() != expected) {
    throw std::runtime_error("bookshelf: " + path.string() + ": NumNodes=" +
                             std::to_string(expected) + " but parsed " +
                             std::to_string(d.names.size()));
  }
  return d;
}

void read_nets(const std::filesystem::path& path, const NodesData& nodes,
               NetlistBuilder& nb) {
  LineReader r(path);
  std::size_t expected_nets = 0;
  std::vector<CellId> pins;
  std::size_t degree_left = 0;
  std::string net_name;
  std::size_t nets_done = 0;

  auto flush_net = [&] {
    if (!pins.empty()) {
      nb.add_net(pins, net_name);
      ++nets_done;
      pins.clear();
    }
  };

  for (auto toks = r.next(); !toks.empty(); toks = r.next()) {
    if (toks[0] == "NumNets") {
      expected_nets = to_size(r, toks.back());
      continue;
    }
    if (toks[0] == "NumPins") continue;
    if (toks[0] == "NetDegree") {
      flush_net();
      if (toks.size() < 3) fail(path, r.lineno(), "malformed NetDegree");
      degree_left = to_size(r, toks[2]);
      net_name = toks.size() >= 4 ? toks[3] : std::string{};
      pins.reserve(degree_left);
      continue;
    }
    if (degree_left == 0) fail(path, r.lineno(), "pin outside a net");
    const auto it = nodes.index.find(toks[0]);
    if (it == nodes.index.end()) {
      fail(path, r.lineno(), "pin references unknown node '" + toks[0] + "'");
    }
    pins.push_back(it->second);
    --degree_left;
  }
  flush_net();
  if (expected_nets != 0 && nets_done != expected_nets) {
    throw std::runtime_error("bookshelf: " + path.string() + ": NumNets=" +
                             std::to_string(expected_nets) + " but parsed " +
                             std::to_string(nets_done));
  }
}

void read_pl(const std::filesystem::path& path, const NodesData& nodes,
             std::vector<double>& x, std::vector<double>& y) {
  LineReader r(path);
  x.assign(nodes.names.size(), 0.0);
  y.assign(nodes.names.size(), 0.0);
  for (auto toks = r.next(); !toks.empty(); toks = r.next()) {
    if (toks.size() < 3) fail(path, r.lineno(), "pl line needs name x y");
    const auto it = nodes.index.find(toks[0]);
    if (it == nodes.index.end()) continue;  // tolerate extra rows
    x[it->second] = to_double(r, toks[1]);
    y[it->second] = to_double(r, toks[2]);
  }
}

BookshelfDesign read_bookshelf_files(const std::filesystem::path& nodes_path,
                                     const std::filesystem::path& nets_path,
                                     const std::filesystem::path& pl_path) {
  const NodesData nodes = read_nodes(nodes_path);
  NetlistBuilder nb;
  for (std::size_t i = 0; i < nodes.names.size(); ++i) {
    nb.add_cell(nodes.names[i], nodes.widths[i], nodes.heights[i],
                nodes.fixed[i]);
  }
  read_nets(nets_path, nodes, nb);

  BookshelfDesign d;
  if (!pl_path.empty() && std::filesystem::exists(pl_path)) {
    read_pl(pl_path, nodes, d.x, d.y);
  }
  d.netlist = nb.build();
  return d;
}

}  // namespace seed_ref

// ---------------------------------------------------------------------------

class BookshelfEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tanglefind_bookshelf_eq_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write_file(const std::string& name, const std::string& content) {
    std::ofstream out(dir_ / name);
    out << content;
  }

  static std::string slurp(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  /// Exact equality of every observable field (== on doubles: the new
  /// parser must produce bit-identical values, not near ones).
  static void expect_identical(const BookshelfDesign& a,
                               const BookshelfDesign& b) {
    const Netlist& na = a.netlist;
    const Netlist& nb = b.netlist;
    ASSERT_EQ(na.num_cells(), nb.num_cells());
    ASSERT_EQ(na.num_nets(), nb.num_nets());
    ASSERT_EQ(na.num_pins(), nb.num_pins());
    EXPECT_EQ(na.num_movable(), nb.num_movable());
    EXPECT_EQ(na.has_names(), nb.has_names());
    for (CellId c = 0; c < na.num_cells(); ++c) {
      EXPECT_EQ(na.cell_width(c), nb.cell_width(c)) << "cell " << c;
      EXPECT_EQ(na.cell_height(c), nb.cell_height(c)) << "cell " << c;
      EXPECT_EQ(na.is_fixed(c), nb.is_fixed(c)) << "cell " << c;
      EXPECT_EQ(na.cell_name(c), nb.cell_name(c)) << "cell " << c;
      const auto sa = na.nets_of(c);
      const auto sb = nb.nets_of(c);
      ASSERT_EQ(sa.size(), sb.size()) << "cell " << c;
      for (std::size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa[i], sb[i]) << "cell " << c << " net slot " << i;
      }
    }
    for (NetId e = 0; e < na.num_nets(); ++e) {
      EXPECT_EQ(na.net_name(e), nb.net_name(e)) << "net " << e;
      const auto pa = na.pins_of(e);
      const auto pb = nb.pins_of(e);
      ASSERT_EQ(pa.size(), pb.size()) << "net " << e;
      for (std::size_t i = 0; i < pa.size(); ++i) {
        EXPECT_EQ(pa[i], pb[i]) << "net " << e << " pin slot " << i;
      }
    }
    ASSERT_EQ(a.x.size(), b.x.size());
    for (std::size_t i = 0; i < a.x.size(); ++i) {
      EXPECT_EQ(a.x[i], b.x[i]) << "x[" << i << "]";
      EXPECT_EQ(a.y[i], b.y[i]) << "y[" << i << "]";
    }
  }

  void expect_parsers_agree(const std::string& stem) {
    const fs::path nodes = dir_ / (stem + ".nodes");
    const fs::path nets = dir_ / (stem + ".nets");
    fs::path pl = dir_ / (stem + ".pl");
    if (!fs::exists(pl)) pl.clear();
    const BookshelfDesign seed =
        seed_ref::read_bookshelf_files(nodes, nets, pl);
    const BookshelfDesign scan = read_bookshelf_files(nodes, nets, pl);
    expect_identical(seed, scan);
  }

  fs::path dir_;
};

TEST_F(BookshelfEquivalenceTest, GeneratedDesignsParseIdentically) {
  // Three shapes: plain, terminal-heavy with placement, structure-rich.
  for (int variant = 0; variant < 3; ++variant) {
    SyntheticCircuitConfig cfg;
    cfg.num_cells = 400 + 300 * variant;
    cfg.num_pads = variant == 1 ? 64 : 8;
    cfg.with_names = true;
    if (variant == 2) {
      StructureSpec s;
      s.size = 80;
      cfg.structures.push_back(s);
    }
    Rng rng(100 + variant);
    SyntheticCircuit circuit = generate_synthetic_circuit(cfg, rng);
    BookshelfDesign d;
    d.netlist = std::move(circuit.netlist);
    if (variant != 0) {
      d.x = std::move(circuit.hint_x);
      d.y = std::move(circuit.hint_y);
    }
    const std::string stem = "gen" + std::to_string(variant);
    write_bookshelf(d, dir_, stem);
    expect_parsers_agree(stem);
  }
}

TEST_F(BookshelfEquivalenceTest, QuirkyValidDialectParsesIdentically) {
  // Every oddity the seed tokenizer accepted: comments (full-line, and
  // token-starting mid-line), '#' inside a token, tabs and runs of
  // blanks, CRLF endings, UCLA headers mid-file, count lines without
  // ':', pin direction + offset fields, .pl orientation rows, .pl rows
  // for unknown nodes, zero-width nodes (clamped), no trailing newline.
  write_file("q.nodes",
             "UCLA nodes 1.0\r\n"
             "# full comment\r\n"
             "NumNodes +4\n"
             "NumTerminals : 1\n"
             "  a#1   +2.5\t3e-2\n"
             "\tb 0 1 # zero width clamps\n"
             "c -1 4.25\n"
             "UCLA is skipped anywhere\n"
             "p0 1 1 terminal");
  write_file("q.nets",
             "UCLA nets 1.0\n"
             "NumNets : 2\n"
             "NumPins 6\n"
             "NetDegree : 3 n#odd\n"
             " a#1 I : 0.5 -0.25\n"
             " b O\n"
             " p0 B\n"
             "# comment between nets\n"
             "NetDegree : 3\n"
             " c I\n"
             " a#1 # bare pin; '#' starts a token so the rest comments out\n"
             " a#1 O\n");
  write_file("q.pl",
             "UCLA pl 1.0\n"
             "a#1 +10.5 -20.25 : N\n"  // leading '+', as stod accepted
             "b 1e3 +0.125 : FS\n"
             "c 3 4\n"
             "unknownrow 7 7 : N\n"
             "p0 0 0 : N /FIXED");
  expect_parsers_agree("q");
}

TEST_F(BookshelfEquivalenceTest, WriteReadWriteIsAFixedPoint) {
  SyntheticCircuitConfig cfg;
  cfg.num_cells = 600;
  cfg.num_pads = 24;
  cfg.with_names = true;
  StructureSpec s;
  s.size = 60;
  cfg.structures.push_back(s);
  Rng rng(7);
  SyntheticCircuit circuit = generate_synthetic_circuit(cfg, rng);
  BookshelfDesign d;
  d.netlist = std::move(circuit.netlist);
  d.x = std::move(circuit.hint_x);
  d.y = std::move(circuit.hint_y);

  write_bookshelf(d, dir_, "fp1");
  const BookshelfDesign back = read_bookshelf(dir_ / "fp1.aux");
  EXPECT_TRUE(back.warnings.empty());
  write_bookshelf(back, dir_, "fp2");
  for (const char* ext : {".nodes", ".nets", ".pl"}) {
    const std::string a = slurp(dir_ / ("fp1" + std::string(ext)));
    const std::string b = slurp(dir_ / ("fp2" + std::string(ext)));
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "write->read->write changed " << ext;
  }
  // And the re-read design equals the re-re-read one field for field
  // (names, widths, fixed flags, placement).
  const BookshelfDesign back2 = read_bookshelf(dir_ / "fp2.aux");
  expect_identical(back, back2);
}

TEST_F(BookshelfEquivalenceTest, UnnamedDesignRoundTripsThroughGeneratedNames) {
  // Cells without names are written as "o<id>"; a re-read + re-write
  // must still be a fixed point.
  BookshelfDesign d;
  NetlistBuilder nb;
  for (int i = 0; i < 5; ++i) nb.add_cell();
  nb.add_net({CellId{0}, CellId{1}, CellId{2}});
  nb.add_net({CellId{3}, CellId{4}});
  d.netlist = nb.build();
  write_bookshelf(d, dir_, "anon1");
  const BookshelfDesign back = read_bookshelf(dir_ / "anon1.aux");
  write_bookshelf(back, dir_, "anon2");
  for (const char* ext : {".nodes", ".nets"}) {
    EXPECT_EQ(slurp(dir_ / ("anon1" + std::string(ext))),
              slurp(dir_ / ("anon2" + std::string(ext))));
  }
  expect_parsers_agree("anon1");
}

}  // namespace
}  // namespace gtl
