#include "netlist/netlist_stats.hpp"

#include <gtest/gtest.h>

#include "graphgen/synthetic_circuit.hpp"
#include "test_helpers.hpp"

namespace gtl {
namespace {

TEST(NetlistStats, SummaryOfGrid) {
  const Netlist nl = testing::make_grid3x3();
  const NetlistSummary s = summarize(nl);
  EXPECT_EQ(s.num_cells, 9u);
  EXPECT_EQ(s.num_nets, 12u);
  EXPECT_EQ(s.num_pins, 24u);
  EXPECT_DOUBLE_EQ(s.avg_pins_per_cell, 24.0 / 9.0);
  EXPECT_DOUBLE_EQ(s.avg_net_size, 2.0);
  EXPECT_EQ(s.max_net_size, 2u);
  EXPECT_EQ(s.max_cell_degree, 4u);
  EXPECT_EQ(s.num_fixed, 0u);
  EXPECT_DOUBLE_EQ(s.total_movable_area, 9.0);
}

TEST(NetlistStats, HistogramCountsNetSizes) {
  const Netlist nl = testing::make_netlist(
      4, {{0, 1}, {0, 1, 2}, {0, 1, 2, 3}, {2, 3}});
  const auto hist = net_size_histogram(nl);
  ASSERT_EQ(hist.size(), 5u);
  EXPECT_EQ(hist[2], 2u);
  EXPECT_EQ(hist[3], 1u);
  EXPECT_EQ(hist[4], 1u);
}

TEST(NetlistStats, RentEstimateOnTinyGraphIsSafe) {
  const Netlist nl = testing::make_grid3x3();
  Rng rng(1);
  const RentEstimate est = estimate_rent_exponent(nl, rng, 4, 8);
  // Tiny graph: just verify no crash and sane clamping.
  EXPECT_GE(est.exponent, 0.0);
  EXPECT_LE(est.exponent, 1.0);
}

TEST(NetlistStats, RentEstimateOfLocalCircuitIsSubLinear) {
  // A circuit with power-law net locality obeys Rent's rule with p < 1;
  // this validates both the estimator and the generator's calibration.
  SyntheticCircuitConfig cfg;
  cfg.num_cells = 20'000;
  cfg.num_pads = 32;
  Rng gen_rng(7);
  const SyntheticCircuit circuit = generate_synthetic_circuit(cfg, gen_rng);
  Rng est_rng(11);
  const RentEstimate est =
      estimate_rent_exponent(circuit.netlist, est_rng, 24, 2048);
  EXPECT_GT(est.samples, 10u);
  EXPECT_GT(est.exponent, 0.3);
  EXPECT_LT(est.exponent, 0.95);
  EXPECT_GT(est.r2, 0.5);
}

TEST(NetlistStats, RentEstimateDeterministicGivenSeed) {
  SyntheticCircuitConfig cfg;
  cfg.num_cells = 5'000;
  cfg.num_pads = 16;
  Rng gen_rng(3);
  const SyntheticCircuit circuit = generate_synthetic_circuit(cfg, gen_rng);
  Rng r1(5), r2(5);
  const RentEstimate a = estimate_rent_exponent(circuit.netlist, r1, 8, 512);
  const RentEstimate b = estimate_rent_exponent(circuit.netlist, r2, 8, 512);
  EXPECT_DOUBLE_EQ(a.exponent, b.exponent);
  EXPECT_DOUBLE_EQ(a.coefficient, b.coefficient);
}

}  // namespace
}  // namespace gtl
