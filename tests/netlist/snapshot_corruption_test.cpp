// Snapshot corruption resilience sweep — the adversarial counterpart to
// netlist_io_test's rejection table.  Contract under ANY corruption:
// try_read_snapshot returns a clean Status (never crashes, never throws,
// never OOMs on a hostile count), and whenever it *does* accept a file,
// the loaded design is bit-identical to the one that was written.
//
// Three sweeps:
//   * truncation at every section boundary and every header byte;
//   * single-byte corruption at every offset in the file;
//   * structurally-targeted patches (oversized counts, non-monotonic
//     CSR, duplicate pins) re-sealed with a fresh checksum, so the
//     corruption reaches the structural validators instead of being
//     stopped at the cheap checksum gate.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "graphgen/synthetic_circuit.hpp"
#include "netlist/netlist_io.hpp"

namespace gtl {
namespace {

namespace fs = std::filesystem;

// Mirrors the on-disk layout documented in netlist_io.hpp.
constexpr std::size_t kHeaderBytes = 8 + 4 * 4 + 5 * 8;  // 64
constexpr std::size_t kNumCellsOffset = 8 + 4 * 4;       // 24
constexpr std::size_t kNumNetsOffset = kNumCellsOffset + 8;
constexpr std::size_t kNumPinsOffset = kNumNetsOffset + 8;
constexpr std::size_t kCellNameBytesOffset = kNumPinsOffset + 8;

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tanglefind_corrupt_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);

    SyntheticCircuitConfig cfg;
    cfg.num_cells = 120;
    cfg.num_pads = 8;
    cfg.with_names = true;  // exercise the name sections too
    StructureSpec s;
    s.size = 24;
    cfg.structures.push_back(s);
    Rng rng(7);
    SyntheticCircuit circuit = generate_synthetic_circuit(cfg, rng);
    design_.netlist = std::move(circuit.netlist);
    design_.x = std::move(circuit.hint_x);
    design_.y = std::move(circuit.hint_y);

    pristine_path_ = dir_ / "pristine.snap";
    ASSERT_TRUE(try_write_snapshot(design_, pristine_path_).is_ok());
    pristine_ = slurp(pristine_path_);
    ASSERT_GT(pristine_.size(), kHeaderBytes + 8);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::string slurp(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }
  void spit(const fs::path& p, const std::string& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  /// The resilience contract for one corrupted byte string: a clean
  /// Status or a load that is provably the original design.
  void expect_clean(const std::string& bytes, const std::string& what) {
    const fs::path path = dir_ / "corrupt.snap";
    spit(path, bytes);
    BookshelfDesign loaded;
    const Status st = try_read_snapshot(path, &loaded);
    if (st.is_ok()) {
      // Accepted — then it must be the pristine design, byte-for-byte
      // (re-snapshot and compare; the writer is deterministic).
      const fs::path echo = dir_ / "echo.snap";
      ASSERT_TRUE(try_write_snapshot(loaded, echo).is_ok()) << what;
      EXPECT_EQ(slurp(echo), pristine_)
          << what << ": accepted a corrupted snapshot as a different design";
    }
  }

  /// Recompute the trailing FNV-1a so a structural patch survives the
  /// checksum gate and reaches the validators it targets.
  static std::string reseal(std::string bytes) {
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i + 8 < bytes.size(); ++i) {
      h ^= static_cast<unsigned char>(bytes[i]);
      h *= 1099511628211ull;
    }
    std::memcpy(bytes.data() + bytes.size() - 8, &h, 8);
    return bytes;
  }

  static std::string patch_u64(std::string bytes, std::size_t offset,
                               std::uint64_t value) {
    std::memcpy(bytes.data() + offset, &value, 8);
    return bytes;
  }

  static std::string patch_u32(std::string bytes, std::size_t offset,
                               std::uint32_t value) {
    std::memcpy(bytes.data() + offset, &value, 4);
    return bytes;
  }

  /// Section boundaries implied by the design (name blobs folded into
  /// one region whose extent is derived from the file size).
  std::vector<std::size_t> section_boundaries() const {
    const std::size_t cells = design_.netlist.num_cells();
    const std::size_t nets = design_.netlist.num_nets();
    const std::size_t pins = design_.netlist.num_pins();
    std::vector<std::size_t> b;
    b.push_back(8);                      // magic
    b.push_back(kHeaderBytes);           // header words
    b.push_back(b.back() + (nets + 1) * 4);  // net_pin_offset
    b.push_back(b.back() + pins * 4);        // net_pins
    b.push_back(b.back() + cells * 8);       // widths
    b.push_back(b.back() + cells * 8);       // heights
    b.push_back(b.back() + cells);           // fixed flags
    // Names region ends where placement begins.
    b.push_back(pristine_.size() - 8 - cells * 16);  // names end
    b.push_back(pristine_.size() - 8 - cells * 8);   // x end
    b.push_back(pristine_.size() - 8);               // y end / checksum
    return b;
  }

  fs::path dir_;
  fs::path pristine_path_;
  BookshelfDesign design_;
  std::string pristine_;
};

TEST_F(SnapshotCorruptionTest, PristineLoadsAndEchoesExactly) {
  BookshelfDesign loaded;
  ASSERT_TRUE(try_read_snapshot(pristine_path_, &loaded).is_ok());
  const fs::path echo = dir_ / "echo.snap";
  ASSERT_TRUE(try_write_snapshot(loaded, echo).is_ok());
  EXPECT_EQ(slurp(echo), pristine_);
}

TEST_F(SnapshotCorruptionTest, TruncationAtEverySectionBoundary) {
  for (const std::size_t cut : section_boundaries()) {
    ASSERT_LT(cut, pristine_.size());
    BookshelfDesign loaded;
    const fs::path path = dir_ / "trunc.snap";
    spit(path, pristine_.substr(0, cut));
    const Status st = try_read_snapshot(path, &loaded);
    EXPECT_FALSE(st.is_ok()) << "a file cut at byte " << cut
                             << " can never be a whole snapshot";
    // One byte either side of the boundary as well.
    for (const std::size_t off : {cut - 1, cut + 1}) {
      spit(path, pristine_.substr(0, off));
      EXPECT_FALSE(try_read_snapshot(path, &loaded).is_ok())
          << "cut at byte " << off;
    }
  }
}

TEST_F(SnapshotCorruptionTest, TruncationAtEveryHeaderByte) {
  BookshelfDesign loaded;
  const fs::path path = dir_ / "trunc.snap";
  for (std::size_t cut = 0; cut <= kHeaderBytes + 8; ++cut) {
    spit(path, pristine_.substr(0, cut));
    EXPECT_FALSE(try_read_snapshot(path, &loaded).is_ok())
        << "cut at byte " << cut;
  }
}

TEST_F(SnapshotCorruptionTest, SingleByteCorruptionAtEveryOffset) {
  // Every byte matters: the checksum (or an earlier validator) must
  // catch a flip anywhere in the file — header, payload, or trailer.
  for (std::size_t off = 0; off < pristine_.size(); ++off) {
    std::string bytes = pristine_;
    bytes[off] = static_cast<char>(static_cast<unsigned char>(bytes[off]) ^
                                   0xA5u);
    expect_clean(bytes, "flip at byte " + std::to_string(off));
  }
}

TEST_F(SnapshotCorruptionTest, OversizedCountsRejectedBeforeAllocation) {
  // Hostile counts must die at validation, not in a giant allocation.
  const std::uint64_t kHuge = std::uint64_t{1} << 32;
  for (const std::size_t off :
       {kNumCellsOffset, kNumNetsOffset, kNumPinsOffset}) {
    BookshelfDesign loaded;
    const fs::path path = dir_ / "huge.snap";
    spit(path, reseal(patch_u64(pristine_, off, kHuge)));
    const Status st = try_read_snapshot(path, &loaded);
    EXPECT_FALSE(st.is_ok()) << "u64 at offset " << off;
  }
  // A plausible-but-wrong count trips the exact-file-size cross-check.
  for (const std::size_t off :
       {kNumCellsOffset, kNumNetsOffset, kNumPinsOffset}) {
    std::uint64_t count = 0;
    std::memcpy(&count, pristine_.data() + off, 8);
    BookshelfDesign loaded;
    const fs::path path = dir_ / "offbyone.snap";
    spit(path, reseal(patch_u64(pristine_, off, count + 1)));
    EXPECT_FALSE(try_read_snapshot(path, &loaded).is_ok())
        << "count+1 at offset " << off;
  }
}

TEST_F(SnapshotCorruptionTest, OversizedNameBlobRejected) {
  BookshelfDesign loaded;
  const fs::path path = dir_ / "blob.snap";
  spit(path, reseal(patch_u64(pristine_, kCellNameBytesOffset,
                              pristine_.size() * 2)));
  EXPECT_FALSE(try_read_snapshot(path, &loaded).is_ok());
}

TEST_F(SnapshotCorruptionTest, ResealedStructuralDamageStillRejected) {
  // Patch the CSR itself and re-seal the checksum: the structural
  // validators are the last line of defense and must hold alone.
  const std::size_t offsets_base = kHeaderBytes;
  // Non-monotonic net_pin_offset: offset[1] beyond offset[2].
  std::uint32_t second = 0;
  std::memcpy(&second, pristine_.data() + offsets_base + 8, 4);
  {
    BookshelfDesign loaded;
    const fs::path path = dir_ / "csr.snap";
    spit(path, reseal(patch_u32(pristine_, offsets_base + 4, second + 1)));
    EXPECT_FALSE(try_read_snapshot(path, &loaded).is_ok())
        << "non-monotonic CSR must be rejected";
  }
  // A duplicated pin inside a multi-pin net breaks the
  // strictly-increasing-per-net invariant.
  {
    const std::size_t nets = design_.netlist.num_nets();
    const std::size_t pins_base = offsets_base + (nets + 1) * 4;
    // Find a net with >= 2 pins from the on-disk CSR itself.
    std::size_t dup_at = 0;
    for (std::size_t n = 0; n < nets && dup_at == 0; ++n) {
      std::uint32_t lo = 0, hi = 0;
      std::memcpy(&lo, pristine_.data() + offsets_base + n * 4, 4);
      std::memcpy(&hi, pristine_.data() + offsets_base + (n + 1) * 4, 4);
      if (hi - lo >= 2) dup_at = pins_base + lo * 4;
    }
    ASSERT_NE(dup_at, 0u) << "fixture must contain a multi-pin net";
    std::uint32_t first_pin = 0;
    std::memcpy(&first_pin, pristine_.data() + dup_at, 4);
    BookshelfDesign loaded;
    const fs::path path = dir_ / "dup.snap";
    spit(path, reseal(patch_u32(pristine_, dup_at + 4, first_pin)));
    EXPECT_FALSE(try_read_snapshot(path, &loaded).is_ok())
        << "duplicate pin in a net must be rejected";
  }
  // A pin referencing a cell id past num_cells.
  {
    const std::size_t nets = design_.netlist.num_nets();
    const std::size_t pins_base = offsets_base + (nets + 1) * 4;
    BookshelfDesign loaded;
    const fs::path path = dir_ / "wild.snap";
    spit(path, reseal(patch_u32(
                   pristine_, pins_base,
                   static_cast<std::uint32_t>(
                       design_.netlist.num_cells() + 1000))));
    EXPECT_FALSE(try_read_snapshot(path, &loaded).is_ok())
        << "pin past num_cells must be rejected";
  }
}

TEST_F(SnapshotCorruptionTest, EmptyAndTinyFilesRejected) {
  BookshelfDesign loaded;
  const fs::path path = dir_ / "tiny.snap";
  spit(path, "");
  EXPECT_FALSE(try_read_snapshot(path, &loaded).is_ok());
  spit(path, "GTLSNAP");
  EXPECT_FALSE(try_read_snapshot(path, &loaded).is_ok());
  spit(path, std::string(kHeaderBytes + 8, '\0'));
  EXPECT_FALSE(try_read_snapshot(path, &loaded).is_ok());
}

}  // namespace
}  // namespace gtl
