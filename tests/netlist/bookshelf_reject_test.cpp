// The Bookshelf rejection table: every malformed-input class the
// strictly-validating scanner must refuse, each with a "file:line: what"
// diagnostic.  The seed parser silently accepted the first three classes
// (short nets, duplicate node names, dropped /FIXED flags) — these are
// the satellite bugfixes of the I/O hardening PR.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "netlist/bookshelf.hpp"

namespace gtl {
namespace {

namespace fs = std::filesystem;

class BookshelfRejectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tanglefind_reject_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
    // A well-formed default pair; individual tests overwrite one file.
    write_file("d.nodes",
               "UCLA nodes 1.0\n"
               "NumNodes : 3\n"
               "NumTerminals : 1\n"
               "a 1 1\n"
               "b 2 1\n"
               "p0 1 1 terminal\n");
    write_file("d.nets",
               "UCLA nets 1.0\n"
               "NumNets : 2\n"
               "NumPins : 5\n"
               "NetDegree : 3 n0\n"
               "\ta I\n"
               "\tb O\n"
               "\tp0 I\n"
               "NetDegree : 2\n"
               "\ta I\n"
               "\tb O\n");
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write_file(const std::string& name, const std::string& content) {
    std::ofstream out(dir_ / name);
    out << content;
  }

  /// The design must be rejected, the diagnostic must carry
  /// "<file>:<line>:" and every expected substring — and the Status
  /// variant must report the same message without throwing.
  void expect_reject(const std::string& bad_file, std::size_t line,
                     const std::vector<std::string>& needles) {
    BookshelfDesign out;
    const Status st = try_read_bookshelf_files(dir_ / "d.nodes",
                                               dir_ / "d.nets", {}, &out);
    ASSERT_FALSE(st.is_ok()) << "malformed input accepted";
    EXPECT_EQ(st.code(), StatusCode::kParseError);
    const std::string loc =
        (dir_ / bad_file).string() + ":" + std::to_string(line) + ":";
    EXPECT_NE(st.message().find(loc), std::string::npos)
        << "diagnostic '" << st.message() << "' lacks location '" << loc
        << "'";
    for (const std::string& needle : needles) {
      EXPECT_NE(st.message().find(needle), std::string::npos)
          << "diagnostic '" << st.message() << "' lacks '" << needle << "'";
    }
    // Throwing surface: same diagnostic.
    try {
      (void)read_bookshelf_files(dir_ / "d.nodes", dir_ / "d.nets");
      FAIL() << "read_bookshelf_files did not throw";
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(st.message(), e.what());
    }
  }

  fs::path dir_;
};

// --- satellite bug 1: short nets were silently flushed -------------------

TEST_F(BookshelfRejectTest, ShortNetBeforeNextNetDegree) {
  write_file("d.nets",
             "UCLA nets 1.0\n"
             "NumNets : 2\n"
             "NumPins : 5\n"
             "NetDegree : 3 n0\n"  // line 4: declares 3, gets 2
             "\ta I\n"
             "\tb O\n"
             "NetDegree : 2\n"
             "\ta I\n"
             "\tp0 O\n");
  expect_reject("d.nets", 4, {"n0", "declares 3 pins", "2 follow"});
}

TEST_F(BookshelfRejectTest, ShortNetAtEof) {
  write_file("d.nets",
             "UCLA nets 1.0\n"
             "NumNets : 1\n"
             "NumPins : 3\n"
             "NetDegree : 3 tail\n"  // line 4: truncated mid-net
             "\ta I\n"
             "\tb O\n");
  expect_reject("d.nets", 4, {"tail", "declares 3 pins", "2 follow"});
}

TEST_F(BookshelfRejectTest, ExcessPinNamesTheNet) {
  write_file("d.nets",
             "NumNets : 1\n"
             "NumPins : 2\n"
             "NetDegree : 2 n0\n"
             "\ta I\n"
             "\tb O\n"
             "\tp0 B\n");  // line 6: third pin on a 2-pin net
  expect_reject("d.nets", 6, {"n0", "p0", "exceeds", "NetDegree 2"});
}

// --- satellite bug 2: duplicate node names were silently aliased ---------

TEST_F(BookshelfRejectTest, DuplicateNodeName) {
  write_file("d.nodes",
             "UCLA nodes 1.0\n"
             "NumNodes : 3\n"
             "a 1 1\n"
             "b 2 1\n"
             "a 4 4\n");  // line 5: second 'a'
  expect_reject("d.nodes", 5, {"duplicate node name 'a'"});
}

TEST_F(BookshelfRejectTest, TerminalNiIsFixedAndCounted) {
  // ISPD-2006 dialect: terminal_NI (fixed but overlappable) marks the
  // cell fixed and counts toward NumTerminals.
  write_file("d.nodes",
             "NumNodes : 3\n"
             "NumTerminals : 2\n"
             "a 1 1\n"
             "b 2 1 terminal_NI\n"
             "p0 1 1 terminal\n");
  BookshelfDesign out;
  const Status st =
      try_read_bookshelf_files(dir_ / "d.nodes", dir_ / "d.nets", {}, &out);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_FALSE(out.netlist.is_fixed(*out.netlist.find_cell("a")));
  EXPECT_TRUE(out.netlist.is_fixed(*out.netlist.find_cell("b")));
  EXPECT_TRUE(out.netlist.is_fixed(*out.netlist.find_cell("p0")));
}

// --- unknown pin -----------------------------------------------------------

TEST_F(BookshelfRejectTest, UnknownPinNode) {
  write_file("d.nets",
             "NumNets : 1\n"
             "NumPins : 2\n"
             "NetDegree : 2\n"
             "\ta I\n"
             "\tzz O\n");  // line 5
  expect_reject("d.nets", 5, {"unknown node 'zz'"});
}

TEST_F(BookshelfRejectTest, PinOutsideAnyNet) {
  write_file("d.nets",
             "NumNets : 1\n"
             "NumPins : 1\n"
             "\ta I\n"  // line 3: pin before any NetDegree
             "NetDegree : 1\n"
             "\tb O\n");
  expect_reject("d.nets", 3, {"outside a net"});
}

// --- bad counts ------------------------------------------------------------

TEST_F(BookshelfRejectTest, UnparsableWidth) {
  write_file("d.nodes",
             "NumNodes : 1\n"
             "a 1x 1\n");  // line 2: "1x" is not a number
  expect_reject("d.nodes", 2, {"expected number", "1x"});
}

TEST_F(BookshelfRejectTest, UnparsableNetDegreeCount) {
  write_file("d.nets",
             "NumNets : 1\n"
             "NumPins : 2\n"
             "NetDegree : two\n"  // line 3
             "\ta I\n"
             "\tb O\n");
  expect_reject("d.nets", 3, {"expected count", "two"});
}

TEST_F(BookshelfRejectTest, EmptyNetDeclaration) {
  write_file("d.nets",
             "NumNets : 1\n"
             "NumPins : 0\n"
             "NetDegree : 0\n");  // line 3
  expect_reject("d.nets", 3, {"empty net"});
}

// --- truncated file --------------------------------------------------------

TEST_F(BookshelfRejectTest, TruncatedNodeLine) {
  write_file("d.nodes",
             "UCLA nodes 1.0\n"
             "NumNodes : 2\n"
             "a 1 1\n"
             "b 2\n");  // line 4: file ends mid-line
  expect_reject("d.nodes", 4, {"node line needs name w h"});
}

// --- NumNodes / NumNets / NumPins / NumTerminals mismatches ---------------

TEST_F(BookshelfRejectTest, NumNodesMismatch) {
  write_file("d.nodes",
             "UCLA nodes 1.0\n"
             "NumNodes : 5\n"  // line 2: declares 5, file has 1
             "a 1 1\n");
  expect_reject("d.nodes", 2, {"NumNodes declares 5", "defines 1"});
}

TEST_F(BookshelfRejectTest, LyingHugeNumNodesIsAMismatchNotBadAlloc) {
  // Big enough that a naive reserve would allocate tens of GB, small
  // enough to pass the 32-bit id check: must end as a count mismatch.
  write_file("d.nodes",
             "NumNodes : 4000000000\n"  // line 1: absurd declared count
             "a 1 1\n"
             "b 2 1\n"
             "p0 1 1 terminal\n");
  expect_reject("d.nodes", 1, {"NumNodes declares 4000000000", "defines 3"});
}

TEST_F(BookshelfRejectTest, NumNodesBeyondIdLimitRejectedUpFront) {
  write_file("d.nodes",
             "NumNodes : 99999999999\n"  // line 1: > 2^32
             "a 1 1\n");
  expect_reject("d.nodes", 1, {"32-bit cell-id limit"});
}

TEST_F(BookshelfRejectTest, HugeNetDegreeIsAShortNetNotBadAlloc) {
  write_file("d.nets",
             "NumNets : 1\n"
             "NumPins : 2\n"
             "NetDegree : 4000000000 big\n"  // line 3
             "\ta I\n"
             "\tb O\n");
  expect_reject("d.nets", 3, {"big", "declares 4000000000 pins", "2 follow"});
}

TEST_F(BookshelfRejectTest, NumNetsMismatch) {
  write_file("d.nets",
             "NumNets : 3\n"  // line 1: declares 3, file has 1
             "NumPins : 2\n"
             "NetDegree : 2\n"
             "\ta I\n"
             "\tb O\n");
  expect_reject("d.nets", 1, {"NumNets declares 3", "defines 1"});
}

TEST_F(BookshelfRejectTest, NumPinsMismatch) {
  write_file("d.nets",
             "NumNets : 1\n"
             "NumPins : 4\n"  // line 2: declares 4, file has 2
             "NetDegree : 2\n"
             "\ta I\n"
             "\tb O\n");
  expect_reject("d.nets", 2, {"NumPins declares 4", "defines 2"});
}

TEST_F(BookshelfRejectTest, NumTerminalsMismatch) {
  write_file("d.nodes",
             "NumNodes : 2\n"
             "NumTerminals : 2\n"  // line 2: declares 2, file has 1
             "a 1 1\n"
             "p0 1 1 terminal\n");
  expect_reject("d.nodes", 2, {"NumTerminals declares 2", "defines 1"});
}

// --- /FIXED handling (satellite bug 3) ------------------------------------

TEST_F(BookshelfRejectTest, PlFixedMergesAndWarns) {
  write_file("d.pl",
             "UCLA pl 1.0\n"
             "a 10 20 : N /FIXED\n"  // fixed in .pl, movable in .nodes
             "b 30 40 : N\n"
             "p0 0 0 : N /FIXED\n");
  BookshelfDesign out;
  const Status st = try_read_bookshelf_files(dir_ / "d.nodes", dir_ / "d.nets",
                                             dir_ / "d.pl", &out);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_TRUE(out.netlist.is_fixed(*out.netlist.find_cell("a")));
  EXPECT_FALSE(out.netlist.is_fixed(*out.netlist.find_cell("b")));
  EXPECT_TRUE(out.netlist.is_fixed(*out.netlist.find_cell("p0")));
  // Only the disagreement warns; p0 was already terminal in .nodes.
  ASSERT_EQ(out.warnings.size(), 1u);
  EXPECT_NE(out.warnings[0].find("d.pl:2"), std::string::npos)
      << out.warnings[0];
  EXPECT_NE(out.warnings[0].find("'a'"), std::string::npos);
}

TEST_F(BookshelfRejectTest, PlFixedWithoutOrientationStillCounts) {
  // Some emitters omit the orientation: "/FIXED" directly after ':'
  // must mark the cell fixed, never be consumed as an orientation.
  write_file("d.pl",
             "a 10 20 : /FIXED\n"
             "b 30 40 :\n");
  BookshelfDesign out;
  const Status st = try_read_bookshelf_files(dir_ / "d.nodes", dir_ / "d.nets",
                                             dir_ / "d.pl", &out);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_TRUE(out.netlist.is_fixed(*out.netlist.find_cell("a")));
  EXPECT_FALSE(out.netlist.is_fixed(*out.netlist.find_cell("b")));
  ASSERT_EQ(out.warnings.size(), 1u);  // the .nodes/.pl disagreement on 'a'
}

TEST_F(BookshelfRejectTest, PlDoubleFixedSuffixRejected) {
  write_file("d.pl", "a 10 20 : /FIXED /FIXED\n");
  BookshelfDesign out;
  const Status st = try_read_bookshelf_files(dir_ / "d.nodes", dir_ / "d.nets",
                                             dir_ / "d.pl", &out);
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("d.pl:1:"), std::string::npos) << st.message();
}

TEST_F(BookshelfRejectTest, PlUnknownNodeWarnsAndSkips) {
  write_file("d.pl",
             "a 10 20 : N\n"
             "ghost 1 2 : N\n");
  BookshelfDesign out;
  const Status st = try_read_bookshelf_files(dir_ / "d.nodes", dir_ / "d.nets",
                                             dir_ / "d.pl", &out);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  ASSERT_EQ(out.warnings.size(), 1u);
  EXPECT_NE(out.warnings[0].find("ghost"), std::string::npos);
}

TEST_F(BookshelfRejectTest, PlBadCoordinateRejected) {
  write_file("d.pl", "a ten 20 : N\n");
  BookshelfDesign out;
  const Status st = try_read_bookshelf_files(dir_ / "d.nodes", dir_ / "d.nets",
                                             dir_ / "d.pl", &out);
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("d.pl:1:"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("ten"), std::string::npos);
}

// --- odds and ends ---------------------------------------------------------

TEST_F(BookshelfRejectTest, MissingFileIsStatusNotThrow) {
  BookshelfDesign out;
  const Status st = try_read_bookshelf_files(dir_ / "nope.nodes",
                                             dir_ / "d.nets", {}, &out);
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("cannot open"), std::string::npos);
}

TEST_F(BookshelfRejectTest, InfiniteDimensionRejected) {
  write_file("d.nodes",
             "NumNodes : 1\n"
             "a inf 1\n");  // stod would have accepted this
  expect_reject("d.nodes", 2, {"expected number", "inf"});
}

TEST_F(BookshelfRejectTest, PlusMinusStaysMalformed) {
  // '+10' parses (stod parity) but '+-1' and a bare '+' never did.
  write_file("d.nodes",
             "NumNodes : 1\n"
             "a +-1 1\n");
  expect_reject("d.nodes", 2, {"expected number", "+-1"});
}

TEST_F(BookshelfRejectTest, ManyPlWarningsAreCappedWithASummary) {
  std::string pl = "a 1 2 : N\n";
  for (int i = 0; i < 30; ++i) {
    pl += "ghost" + std::to_string(i) + " 0 0 : N\n";
  }
  write_file("d.pl", pl);
  BookshelfDesign out;
  const Status st = try_read_bookshelf_files(dir_ / "d.nodes", dir_ / "d.nets",
                                             dir_ / "d.pl", &out);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  // 20 detailed warnings + 1 summary of the 10 suppressed.
  ASSERT_EQ(out.warnings.size(), 21u);
  EXPECT_NE(out.warnings.back().find("10 more warning(s) suppressed"),
            std::string::npos)
      << out.warnings.back();
}

TEST_F(BookshelfRejectTest, TrailingGarbageAfterNumberRejected) {
  write_file("d.nodes",
             "NumNodes : 1\n"
             "a 1.5e 2\n");  // stod would have parsed 1.5 and dropped "e"
  expect_reject("d.nodes", 2, {"expected number", "1.5e"});
}

TEST_F(BookshelfRejectTest, AuxWithoutNetsRejected) {
  write_file("d.aux", "RowBasedPlacement : d.nodes\n");
  BookshelfDesign out;
  const Status st = try_read_bookshelf(dir_ / "d.aux", &out);
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("does not name .nodes and .nets"),
            std::string::npos);
}

}  // namespace
}  // namespace gtl
