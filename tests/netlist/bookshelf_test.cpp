#include "netlist/bookshelf.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "graphgen/synthetic_circuit.hpp"

namespace gtl {
namespace {

namespace fs = std::filesystem;

class BookshelfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tanglefind_bookshelf_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write_file(const std::string& name, const std::string& content) {
    std::ofstream out(dir_ / name);
    out << content;
  }

  fs::path dir_;
};

TEST_F(BookshelfTest, ReadsHandWrittenDesign) {
  write_file("tiny.aux",
             "RowBasedPlacement : tiny.nodes tiny.nets tiny.pl\n");
  write_file("tiny.nodes",
             "UCLA nodes 1.0\n"
             "# comment line\n"
             "NumNodes : 3\n"
             "NumTerminals : 1\n"
             "a 2 1\n"
             "b 1 1\n"
             "p0 1 1 terminal\n");
  write_file("tiny.nets",
             "UCLA nets 1.0\n"
             "NumNets : 2\n"
             "NumPins : 5\n"
             "NetDegree : 3 n0\n"
             "\ta I\n"
             "\tb O\n"
             "\tp0 I\n"
             "NetDegree : 2\n"
             "\ta I\n"
             "\tb O\n");
  write_file("tiny.pl",
             "UCLA pl 1.0\n"
             "a 10 20 : N\n"
             "b 30 40 : N\n"
             "p0 0 0 : N /FIXED\n");

  const BookshelfDesign d = read_bookshelf(dir_ / "tiny.aux");
  EXPECT_EQ(d.netlist.num_cells(), 3u);
  EXPECT_EQ(d.netlist.num_nets(), 2u);
  EXPECT_EQ(d.netlist.num_pins(), 5u);
  ASSERT_TRUE(d.netlist.find_cell("a").has_value());
  const CellId a = *d.netlist.find_cell("a");
  EXPECT_DOUBLE_EQ(d.netlist.cell_width(a), 2.0);
  EXPECT_TRUE(d.netlist.is_fixed(*d.netlist.find_cell("p0")));
  EXPECT_FALSE(d.netlist.is_fixed(a));
  ASSERT_EQ(d.x.size(), 3u);
  EXPECT_DOUBLE_EQ(d.x[a], 10.0);
  EXPECT_DOUBLE_EQ(d.y[a], 20.0);
}

TEST_F(BookshelfTest, MissingFileThrows) {
  EXPECT_THROW(read_bookshelf(dir_ / "nope.aux"), std::runtime_error);
}

TEST_F(BookshelfTest, WrongNodeCountThrows) {
  write_file("bad.nodes",
             "NumNodes : 5\n"
             "a 1 1\n");
  write_file("bad.nets", "NumNets : 0\nNumPins : 0\n");
  EXPECT_THROW(
      read_bookshelf_files(dir_ / "bad.nodes", dir_ / "bad.nets"),
      std::runtime_error);
}

TEST_F(BookshelfTest, UnknownPinCellThrows) {
  write_file("bad.nodes", "NumNodes : 1\nNumTerminals : 0\na 1 1\n");
  write_file("bad.nets",
             "NumNets : 1\nNumPins : 1\nNetDegree : 1\n\tzz I\n");
  EXPECT_THROW(
      read_bookshelf_files(dir_ / "bad.nodes", dir_ / "bad.nets"),
      std::runtime_error);
}

TEST_F(BookshelfTest, RoundTripPreservesStructure) {
  SyntheticCircuitConfig cfg;
  cfg.num_cells = 500;
  cfg.num_pads = 8;
  cfg.with_names = true;
  StructureSpec s;
  s.size = 60;
  cfg.structures.push_back(s);
  Rng rng(42);
  const SyntheticCircuit circuit = generate_synthetic_circuit(cfg, rng);

  BookshelfDesign out;
  // Netlist has no copy issues: move a fresh generation in.
  out.x = circuit.hint_x;
  out.y = circuit.hint_y;
  {
    Rng rng2(42);
    out.netlist = generate_synthetic_circuit(cfg, rng2).netlist;
  }
  write_bookshelf(out, dir_, "rt");

  const BookshelfDesign back = read_bookshelf(dir_ / "rt.aux");
  EXPECT_EQ(back.netlist.num_cells(), circuit.netlist.num_cells());
  EXPECT_EQ(back.netlist.num_nets(), circuit.netlist.num_nets());
  EXPECT_EQ(back.netlist.num_pins(), circuit.netlist.num_pins());
  EXPECT_EQ(back.netlist.num_movable(), circuit.netlist.num_movable());
  ASSERT_EQ(back.x.size(), circuit.hint_x.size());
  for (std::size_t i = 0; i < back.x.size(); i += 37) {
    EXPECT_NEAR(back.x[i], circuit.hint_x[i], 1e-9);
    EXPECT_NEAR(back.y[i], circuit.hint_y[i], 1e-9);
  }
  // Per-net pin multisets must survive the round trip.
  for (NetId e = 0; e < back.netlist.num_nets(); e += 11) {
    EXPECT_EQ(back.netlist.net_size(e), circuit.netlist.net_size(e));
  }
}

TEST_F(BookshelfTest, WriteWithoutPlacementOmitsPl) {
  BookshelfDesign d;
  NetlistBuilder nb;
  nb.add_cell("a");
  nb.add_cell("b");
  nb.add_net({CellId{0}, CellId{1}});
  d.netlist = nb.build();
  write_bookshelf(d, dir_, "nopl");
  EXPECT_TRUE(fs::exists(dir_ / "nopl.nodes"));
  EXPECT_TRUE(fs::exists(dir_ / "nopl.nets"));
  EXPECT_FALSE(fs::exists(dir_ / "nopl.pl"));
  const BookshelfDesign back = read_bookshelf(dir_ / "nopl.aux");
  EXPECT_EQ(back.netlist.num_cells(), 2u);
  EXPECT_TRUE(back.x.empty());
}

TEST_F(BookshelfTest, UnnamedCellsGetStableGeneratedNames) {
  BookshelfDesign d;
  NetlistBuilder nb;
  nb.add_cell();
  nb.add_cell();
  nb.add_net({CellId{0}, CellId{1}});
  d.netlist = nb.build();
  write_bookshelf(d, dir_, "anon");
  const BookshelfDesign back = read_bookshelf(dir_ / "anon.aux");
  EXPECT_EQ(back.netlist.num_cells(), 2u);
  EXPECT_TRUE(back.netlist.find_cell("o0").has_value());
  EXPECT_TRUE(back.netlist.find_cell("o1").has_value());
}

}  // namespace
}  // namespace gtl
