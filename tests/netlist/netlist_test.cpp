#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "test_helpers.hpp"

namespace gtl {
namespace {

TEST(NetlistBuilder, BuildsSimpleHypergraph) {
  NetlistBuilder nb;
  const CellId a = nb.add_cell("a");
  const CellId b = nb.add_cell("b");
  const CellId c = nb.add_cell("c");
  nb.add_net({a, b}, "n1");
  nb.add_net({a, b, c}, "n2");
  const Netlist nl = nb.build();

  EXPECT_EQ(nl.num_cells(), 3u);
  EXPECT_EQ(nl.num_nets(), 2u);
  EXPECT_EQ(nl.num_pins(), 5u);
  EXPECT_EQ(nl.net_size(0), 2u);
  EXPECT_EQ(nl.net_size(1), 3u);
  EXPECT_EQ(nl.cell_degree(a), 2u);
  EXPECT_EQ(nl.cell_degree(c), 1u);
  EXPECT_DOUBLE_EQ(nl.average_pins_per_cell(), 5.0 / 3.0);
}

TEST(NetlistBuilder, DeduplicatesPinsWithinNet) {
  NetlistBuilder nb;
  const CellId a = nb.add_cell();
  const CellId b = nb.add_cell();
  nb.add_net({a, b, a, b, a});
  const Netlist nl = nb.build();
  EXPECT_EQ(nl.net_size(0), 2u);
  EXPECT_EQ(nl.num_pins(), 2u);
}

TEST(NetlistBuilder, RejectsEmptyNet) {
  NetlistBuilder nb;
  nb.add_cell();
  EXPECT_THROW(nb.add_net(std::initializer_list<CellId>{}), std::logic_error);
}

TEST(NetlistBuilder, RejectsUnknownCell) {
  NetlistBuilder nb;
  nb.add_cell();
  EXPECT_THROW(nb.add_net({CellId{5}}), std::logic_error);
}

TEST(NetlistBuilder, RejectsNonPositiveDimensions) {
  NetlistBuilder nb;
  EXPECT_THROW(nb.add_cell("x", 0.0, 1.0), std::logic_error);
  EXPECT_THROW(nb.add_cell("x", 1.0, -2.0), std::logic_error);
}

TEST(Netlist, TransposedIncidenceIsConsistent) {
  const Netlist nl = testing::make_grid3x3();
  // Every (cell, net) incidence must appear in both directions.
  for (NetId e = 0; e < nl.num_nets(); ++e) {
    for (const CellId c : nl.pins_of(e)) {
      const auto nets = nl.nets_of(c);
      EXPECT_NE(std::find(nets.begin(), nets.end(), e), nets.end());
    }
  }
  std::size_t degree_sum = 0;
  for (CellId c = 0; c < nl.num_cells(); ++c) degree_sum += nl.cell_degree(c);
  EXPECT_EQ(degree_sum, nl.num_pins());
}

TEST(Netlist, SinglePinNetAllowed) {
  NetlistBuilder nb;
  const CellId a = nb.add_cell();
  nb.add_net({a});
  const Netlist nl = nb.build();
  EXPECT_EQ(nl.net_size(0), 1u);
  EXPECT_EQ(nl.cell_degree(a), 1u);
}

TEST(Netlist, FixedCellsTracked) {
  NetlistBuilder nb;
  nb.add_cell("pad", 1.0, 1.0, /*fixed=*/true);
  nb.add_cell("gate");
  const Netlist nl = nb.build();
  EXPECT_TRUE(nl.is_fixed(0));
  EXPECT_FALSE(nl.is_fixed(1));
  EXPECT_EQ(nl.num_movable(), 1u);
}

TEST(Netlist, NameLookup) {
  NetlistBuilder nb;
  nb.add_cell("alpha");
  nb.add_cell("beta");
  const Netlist nl = nb.build();
  EXPECT_TRUE(nl.has_names());
  EXPECT_EQ(nl.cell_name(0), "alpha");
  ASSERT_TRUE(nl.find_cell("beta").has_value());
  EXPECT_EQ(*nl.find_cell("beta"), 1u);
  EXPECT_FALSE(nl.find_cell("gamma").has_value());
}

TEST(Netlist, UnnamedNetlistHasNoNames) {
  NetlistBuilder nb;
  nb.add_cell();
  const Netlist nl = nb.build();
  EXPECT_FALSE(nl.has_names());
  EXPECT_EQ(nl.cell_name(0), "");
  EXPECT_FALSE(nl.find_cell("o0").has_value());
}

TEST(Netlist, CellGeometry) {
  NetlistBuilder nb;
  nb.add_cell("w", 3.0, 2.0);
  const Netlist nl = nb.build();
  EXPECT_DOUBLE_EQ(nl.cell_width(0), 3.0);
  EXPECT_DOUBLE_EQ(nl.cell_height(0), 2.0);
  EXPECT_DOUBLE_EQ(nl.cell_area(0), 6.0);
}

TEST(NetlistBuilder, BuilderResetsAfterBuild) {
  NetlistBuilder nb;
  nb.add_cell();
  nb.add_net({CellId{0}});
  (void)nb.build();
  EXPECT_EQ(nb.num_cells(), 0u);
  EXPECT_EQ(nb.num_nets(), 0u);
}

TEST(Netlist, GridDegreesMatchStructure) {
  const Netlist nl = testing::make_grid3x3();
  EXPECT_EQ(nl.num_cells(), 9u);
  EXPECT_EQ(nl.num_nets(), 12u);
  EXPECT_EQ(nl.cell_degree(4), 4u);  // center
  EXPECT_EQ(nl.cell_degree(0), 2u);  // corner
  EXPECT_EQ(nl.cell_degree(1), 3u);  // edge
}

}  // namespace
}  // namespace gtl
