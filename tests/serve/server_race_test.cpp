// Race-window stress regression for the server's concurrent core, meant
// to run under TSan (the CI tsan job runs the full suite).  The thread
// safety annotations in serve/ are compile-time contracts; this test is
// the runtime counterpart that hammers the documented race windows:
//
//   * inline lane (status/stats/cancel/unload) against the worker lane
//     (run_finder churn) against the watchdog (tiny deadlines), and
//   * stop() landing mid-storm while submitters are still pushing.
//
// The observable contract under all of it: every submitted request gets
// exactly one reply — never zero (lost), never two (double-send).

#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "finder/finder_json.hpp"
#include "graphgen/planted_graph.hpp"
#include "util/rng.hpp"

namespace gtl::serve {
namespace {

BookshelfDesign small_design() {
  PlantedGraphConfig cfg;
  cfg.num_cells = 800;
  cfg.gtls.push_back({80, 1});
  Rng rng(17);
  BookshelfDesign design;
  design.netlist = generate_planted_graph(cfg, rng).netlist;
  return design;
}

/// Fast enough that runs churn; slow enough that cancels and 1-3 ms
/// deadlines land mid-run often.
FinderConfig storm_config() {
  FinderConfig cfg;
  cfg.num_seeds = 6;
  cfg.max_ordering_length = 300;
  cfg.num_threads = 1;
  return cfg;
}

std::string run_line(std::uint64_t id, const std::string& design,
                     std::uint64_t deadline_ms) {
  JsonValue::Object obj;
  obj.emplace("id", JsonValue(id));
  obj.emplace("op", JsonValue("run_finder"));
  obj.emplace("design", JsonValue(design));
  obj.emplace("config", to_json(storm_config()));
  if (deadline_ms != 0) {
    obj.emplace("deadline_ms", JsonValue(deadline_ms));
  }
  return JsonValue(std::move(obj)).dump();
}

/// One slot per submitted request; each reply bumps its slot and the
/// previous value must have been zero.
class ReplyLedger {
 public:
  explicit ReplyLedger(std::size_t n) : counts_(n) {}

  Server::ResponseFn sink(std::size_t slot) {
    return [this, slot](const std::string& line) {
      EXPECT_FALSE(line.empty());
      const int prev = counts_[slot].fetch_add(1, std::memory_order_acq_rel);
      EXPECT_EQ(prev, 0) << "request slot " << slot << " replied twice";
    };
  }

  void expect_exactly_one_each() const {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      EXPECT_EQ(counts_[i].load(std::memory_order_acquire), 1)
          << "request slot " << i;
    }
  }

 private:
  std::vector<std::atomic<int>> counts_;
};

// Inline lane vs worker lane vs watchdog vs registry churn, all at once.
// Submitters fire run_finder with a mix of no-deadline and 1-3 ms
// deadlines (so the watchdog trips mid-run constantly); inline threads
// hammer status/stats and cancel random in-storm ids; a churn thread
// loads and unloads a design some runs target.
TEST(ServerRace, InlineWorkerWatchdogStorm) {
  ServerConfig cfg;
  cfg.workers = 3;
  cfg.queue_capacity = 256;
  Server server(cfg);
  ASSERT_TRUE(server.preload("d", small_design()).is_ok());

  constexpr int kSubmitters = 3;
  constexpr int kPerThread = 25;
  constexpr std::size_t kTotal = kSubmitters * kPerThread;
  ReplyLedger ledger(kTotal);
  std::atomic<bool> quit{false};

  std::vector<std::thread> inline_threads;
  for (int t = 0; t < 2; ++t) {
    inline_threads.emplace_back([&server, &quit, t] {
      std::mt19937 rng(100u + static_cast<unsigned>(t));
      while (!quit.load(std::memory_order_acquire)) {
        switch (rng() % 3u) {
          case 0:
            (void)server.handle_line(R"({"id":900000,"op":"status"})");
            break;
          case 1:
            (void)server.handle_line(R"({"id":900001,"op":"stats"})");
            break;
          default: {
            // Cancel a random storm id: sometimes mid-run, sometimes
            // already finished (not_found) — both replies are fine, the
            // point is racing cancel against execute_run/watchdog.
            const std::uint64_t target = 1 + rng() % kTotal;
            (void)server.handle_line(
                R"({"id":900002,"op":"cancel","target_id":)" +
                std::to_string(target) + "}");
            break;
          }
        }
      }
    });
  }

  std::thread churn([&server, &quit] {
    while (!quit.load(std::memory_order_acquire)) {
      (void)server.preload("churn", small_design());
      (void)server.handle_line(
          R"({"id":900003,"op":"unload_design","design":"churn"})");
    }
  });

  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&server, &ledger, t] {
      std::mt19937 rng(200u + static_cast<unsigned>(t));
      for (int i = 0; i < kPerThread; ++i) {
        const std::size_t slot =
            static_cast<std::size_t>(t) * kPerThread + static_cast<std::size_t>(i);
        // Request ids are 1-based slots, unique across threads.
        const std::uint64_t id = slot + 1;
        const char* design = (rng() % 4u == 0) ? "churn" : "d";
        const std::uint64_t deadline = (rng() % 2u == 0) ? 1 + rng() % 3u : 0;
        server.submit(run_line(id, design, deadline), ledger.sink(slot));
      }
    });
  }

  for (auto& th : submitters) th.join();
  quit.store(true, std::memory_order_release);
  for (auto& th : inline_threads) th.join();
  churn.join();

  // stop() cancels in-flight runs and drains the queue; when it returns
  // every submitted request has been answered.
  server.stop();
  ledger.expect_exactly_one_each();
}

// stop() racing active submitters: requests landing before, during, and
// after shutdown must each get exactly one reply (completed, cancelled,
// or refused — but never silence, never a duplicate).
TEST(ServerRace, StopMidStormStillRepliesExactlyOnce) {
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 64;
  Server server(cfg);
  ASSERT_TRUE(server.preload("d", small_design()).is_ok());

  constexpr int kSubmitters = 3;
  constexpr int kPerThread = 20;
  ReplyLedger ledger(kSubmitters * kPerThread);

  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&server, &ledger, t] {
      std::mt19937 rng(300u + static_cast<unsigned>(t));
      for (int i = 0; i < kPerThread; ++i) {
        const std::size_t slot =
            static_cast<std::size_t>(t) * kPerThread + static_cast<std::size_t>(i);
        const std::uint64_t deadline = (rng() % 2u == 0) ? 1 + rng() % 3u : 0;
        server.submit(run_line(slot + 1, "d", deadline), ledger.sink(slot));
      }
    });
  }

  // Let the storm build, then pull the plug while submitters still push.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.stop();

  for (auto& th : submitters) th.join();
  // Post-stop submissions reply "cancelled" inline, so by here every
  // slot is settled.
  ledger.expect_exactly_one_each();
}

}  // namespace
}  // namespace gtl::serve
