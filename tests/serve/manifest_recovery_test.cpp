// Crash-safe manifest: file round trips and corruption rejection, the
// server's write-ahead discipline (record on load, forget on unload),
// and restart recovery — a recovered server must answer the same query
// with byte-identical results.

#include "serve/manifest.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "finder/finder_json.hpp"
#include "graphgen/planted_graph.hpp"
#include "netlist/bookshelf.hpp"
#include "netlist/netlist_io.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace gtl::serve {
namespace {

namespace fs = std::filesystem;

class ManifestRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tanglefind_manifest_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
    manifest_path_ = dir_ / "manifest.json";

    // A real on-disk design to load/recover from.
    PlantedGraphConfig cfg;
    cfg.num_cells = 400;
    cfg.gtls.push_back({60, 1});
    Rng rng(13);
    BookshelfDesign design;
    design.netlist = generate_planted_graph(cfg, rng).netlist;
    write_bookshelf(design, dir_, "d1");
    aux_path_ = dir_ / "d1.aux";
  }
  void TearDown() override { fs::remove_all(dir_); }

  ServerConfig server_config() const {
    ServerConfig cfg;
    cfg.workers = 1;
    cfg.manifest_path = manifest_path_;
    return cfg;
  }

  static JsonValue parse(const std::string& line) {
    JsonValue json;
    EXPECT_TRUE(JsonValue::parse(line, &json).is_ok()) << line;
    return json;
  }

  static std::string load_line(std::uint64_t id, const std::string& name,
                               const fs::path& aux,
                               const fs::path& snapshot = {}) {
    JsonValue::Object obj;
    obj.emplace("id", JsonValue(id));
    obj.emplace("op", JsonValue("load_design"));
    obj.emplace("design", JsonValue(name));
    if (!aux.empty()) obj.emplace("aux", JsonValue(aux.string()));
    if (!snapshot.empty()) {
      obj.emplace("snapshot", JsonValue(snapshot.string()));
    }
    return JsonValue(std::move(obj)).dump();
  }

  static std::string run_line(std::uint64_t id, const std::string& name) {
    FinderConfig cfg;
    cfg.num_seeds = 4;
    cfg.max_ordering_length = 200;
    cfg.num_threads = 1;
    JsonValue::Object obj;
    obj.emplace("id", JsonValue(id));
    obj.emplace("op", JsonValue("run_finder"));
    obj.emplace("design", JsonValue(name));
    obj.emplace("config", to_json(cfg));
    return JsonValue(std::move(obj)).dump();
  }

  /// The result block of an OK response, as a compact string.
  static std::string result_dump(const std::string& line) {
    const JsonValue json = parse(line);
    const JsonValue* result = json.find("result");
    EXPECT_NE(result, nullptr) << line;
    return result == nullptr ? std::string() : result->dump();
  }

  void spit(const fs::path& p, const std::string& text) {
    std::ofstream out(p, std::ios::trunc);
    out << text;
  }

  fs::path dir_;
  fs::path manifest_path_;
  fs::path aux_path_;
};

TEST_F(ManifestRecoveryTest, FileRoundTrip) {
  Manifest manifest;
  manifest["ibm01"] = {"/corpus/ibm01.aux", "/cache/ibm01.snap"};
  manifest["ibm02"] = {"/corpus/ibm02.aux", ""};
  ASSERT_TRUE(write_manifest_atomic(manifest, manifest_path_).is_ok());

  Manifest loaded;
  ASSERT_TRUE(read_manifest(manifest_path_, &loaded).is_ok());
  EXPECT_EQ(loaded, manifest);

  // Atomic replace: a rewrite fully supersedes the old contents.
  manifest.erase("ibm02");
  ASSERT_TRUE(write_manifest_atomic(manifest, manifest_path_).is_ok());
  ASSERT_TRUE(read_manifest(manifest_path_, &loaded).is_ok());
  EXPECT_EQ(loaded, manifest);
}

TEST_F(ManifestRecoveryTest, MissingFileIsNotFound) {
  Manifest loaded;
  EXPECT_EQ(read_manifest(dir_ / "nope.json", &loaded).code(),
            StatusCode::kNotFound);
}

TEST_F(ManifestRecoveryTest, CorruptManifestsRejected) {
  const char* bad[] = {
      "not json at all",
      "[]",                                               // not an object
      R"({"designs": {}})",                               // missing version
      R"({"version": 99, "designs": {}})",                // future version
      R"({"version": 1, "designs": []})",                 // designs not object
      R"({"version": 1, "designs": {}, "extra": 1})",     // unknown key
      R"({"version": 1, "designs": {"": {"aux": "a"}}})", // empty name
      R"({"version": 1, "designs": {"d": {}}})",          // no sources
      R"({"version": 1, "designs": {"d": {"aux": "a",
                                          "typo": "x"}}})",
  };
  for (const char* text : bad) {
    spit(manifest_path_, text);
    Manifest loaded;
    EXPECT_FALSE(read_manifest(manifest_path_, &loaded).is_ok())
        << "accepted: " << text;
  }
}

TEST_F(ManifestRecoveryTest, LoadRecordsAndUnloadForgets) {
  Server server(server_config());
  const std::string load_reply =
      server.handle_line(load_line(1, "d1", aux_path_));
  ASSERT_EQ(parse(load_reply).find("error"), nullptr) << load_reply;

  Manifest manifest;
  ASSERT_TRUE(read_manifest(manifest_path_, &manifest).is_ok());
  ASSERT_EQ(manifest.count("d1"), 1u);
  EXPECT_EQ(manifest["d1"].aux, aux_path_.string());
  EXPECT_TRUE(manifest["d1"].snapshot.empty());

  const std::string unload_reply = server.handle_line(
      R"({"id": 2, "op": "unload_design", "design": "d1"})");
  ASSERT_EQ(parse(unload_reply).find("error"), nullptr) << unload_reply;
  ASSERT_TRUE(read_manifest(manifest_path_, &manifest).is_ok());
  EXPECT_TRUE(manifest.empty());
}

TEST_F(ManifestRecoveryTest, RestartRecoversAndAnswersIdentically) {
  const fs::path snapshot = dir_ / "d1.snap";
  std::string before;
  {
    Server server(server_config());
    const std::string load_reply =
        server.handle_line(load_line(1, "d1", aux_path_, snapshot));
    ASSERT_EQ(parse(load_reply).find("error"), nullptr) << load_reply;
    before = result_dump(server.handle_line(run_line(2, "d1")));
  }  // "crash": the server goes away, the manifest and snapshot stay

  Server revived(server_config());
  Server::RecoveryReport report;
  ASSERT_TRUE(revived.recover_from_manifest(&report).is_ok());
  EXPECT_EQ(report.attempted, 1u);
  EXPECT_EQ(report.recovered, 1u);
  EXPECT_TRUE(report.notes.empty());
  ASSERT_NE(revived.registry().find("d1"), nullptr);

  // The determinism contract survives the restart: byte-identical result.
  EXPECT_EQ(result_dump(revived.handle_line(run_line(3, "d1"))), before);

  // Recovery shows up in stats, and the snapshot cache was used.
  const JsonValue stats =
      parse(revived.handle_line(R"({"id": 4, "op": "stats"})"));
  const JsonValue* stats_result = stats.find("result");
  ASSERT_NE(stats_result, nullptr) << stats.dump();
  const JsonValue* global = stats_result->find("global");
  ASSERT_NE(global, nullptr);
  std::uint64_t recovered = 0, hits = 0;
  ASSERT_TRUE(
      global->find("designs_recovered")->get_uint64(&recovered).is_ok());
  ASSERT_TRUE(global->find("snapshot_hits")->get_uint64(&hits).is_ok());
  EXPECT_EQ(recovered, 1u);
  EXPECT_EQ(hits, 1u);

  // A same-source replay of the recovered design is idempotent.
  const JsonValue replay =
      parse(revived.handle_line(load_line(5, "d1", aux_path_, snapshot)));
  ASSERT_EQ(replay.find("error"), nullptr) << replay.dump();
  const JsonValue* replay_result = replay.find("result");
  ASSERT_NE(replay_result, nullptr);
  const JsonValue* idem = replay_result->find("idempotent");
  ASSERT_NE(idem, nullptr) << replay.dump();
  bool idempotent = false;
  ASSERT_TRUE(idem->get_bool(&idempotent).is_ok());
  EXPECT_TRUE(idempotent);
}

TEST_F(ManifestRecoveryTest, VanishedSourcesDroppedWithNote) {
  Manifest manifest;
  manifest["ghost"] = {(dir_ / "ghost.aux").string(), ""};
  manifest["d1"] = {aux_path_.string(), ""};
  ASSERT_TRUE(write_manifest_atomic(manifest, manifest_path_).is_ok());

  Server server(server_config());
  Server::RecoveryReport report;
  ASSERT_TRUE(server.recover_from_manifest(&report).is_ok());
  EXPECT_EQ(report.attempted, 2u);
  EXPECT_EQ(report.recovered, 1u);
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("ghost"), std::string::npos);
  EXPECT_NE(server.registry().find("d1"), nullptr);
  EXPECT_EQ(server.registry().find("ghost"), nullptr);

  // The rewritten manifest keeps only the survivors.
  Manifest rewritten;
  ASSERT_TRUE(read_manifest(manifest_path_, &rewritten).is_ok());
  EXPECT_EQ(rewritten.count("d1"), 1u);
  EXPECT_EQ(rewritten.count("ghost"), 0u);
}

TEST_F(ManifestRecoveryTest, CorruptManifestIsReportedNotFatal) {
  spit(manifest_path_, "{{{ definitely not a manifest");

  Server server(server_config());
  Server::RecoveryReport report;
  EXPECT_FALSE(server.recover_from_manifest(&report).is_ok());
  EXPECT_EQ(report.recovered, 0u);

  // The server is degraded (no recovery), not broken: the next load
  // succeeds and overwrites the corrupt file with a valid manifest.
  const std::string load_reply =
      server.handle_line(load_line(1, "d1", aux_path_));
  ASSERT_EQ(parse(load_reply).find("error"), nullptr) << load_reply;
  Manifest manifest;
  ASSERT_TRUE(read_manifest(manifest_path_, &manifest).is_ok());
  EXPECT_EQ(manifest.count("d1"), 1u);
}

TEST_F(ManifestRecoveryTest, NoManifestPathMeansNoManifest) {
  ServerConfig cfg;
  cfg.workers = 1;
  Server server(cfg);
  Server::RecoveryReport report;
  ASSERT_TRUE(server.recover_from_manifest(&report).is_ok());
  EXPECT_EQ(report.attempted, 0u);

  const std::string load_reply =
      server.handle_line(load_line(1, "d1", aux_path_));
  ASSERT_EQ(parse(load_reply).find("error"), nullptr) << load_reply;
  EXPECT_FALSE(fs::exists(manifest_path_));
}

TEST_F(ManifestRecoveryTest, PreloadedDesignsAreNotManifested) {
  Server server(server_config());
  PlantedGraphConfig cfg;
  cfg.num_cells = 120;
  cfg.gtls.push_back({30, 1});
  Rng rng(5);
  BookshelfDesign design;
  design.netlist = generate_planted_graph(cfg, rng).netlist;
  ASSERT_TRUE(server.preload("inproc", std::move(design)).is_ok());

  // An in-process design has no sources to re-load from; the manifest
  // (if written at all) must not claim it.
  Manifest manifest;
  const Status st = read_manifest(manifest_path_, &manifest);
  if (st.is_ok()) {
    EXPECT_EQ(manifest.count("inproc"), 0u);
  } else {
    EXPECT_EQ(st.code(), StatusCode::kNotFound) << st.to_string();
  }
}

}  // namespace
}  // namespace gtl::serve
