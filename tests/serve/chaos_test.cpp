// Chaos suite: seeded fault schedules against a live Server, asserting
// the robustness contract end to end:
//
//   * the server never crashes;
//   * every accepted request gets exactly one reply, and every error
//     reply carries a documented wire code;
//   * requests that succeed under faults return results byte-identical
//     to a fault-free run (the determinism contract is fault-proof);
//   * stats counters stay consistent with what actually happened.
//
// The headline schedule (AdmissionAndWorkerFaultsExactlyOneReply) fires
// a deterministic 210 injected faults — the suite's >= 200 scheduled
// faults live there, and the test asserts the count so a regressed
// schedule fails loudly.  Everything here skips cleanly in builds
// without -DGTL_FAILPOINTS=ON (the tier-1 suite stays fault-free);
// ServerSurvivesClientVanishingMidResponse runs in every build.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "finder/finder_json.hpp"
#include "graphgen/planted_graph.hpp"
#include "netlist/bookshelf.hpp"
#include "serve/client.hpp"
#include "serve/manifest.hpp"
#include "serve/server.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace gtl::serve {
namespace {

namespace fs = std::filesystem;

BookshelfDesign tiny_design(std::uint64_t seed = 17) {
  PlantedGraphConfig cfg;
  cfg.num_cells = 400;
  cfg.gtls.push_back({60, 1});
  Rng rng(seed);
  BookshelfDesign design;
  design.netlist = generate_planted_graph(cfg, rng).netlist;
  return design;
}

FinderConfig quick_config(std::size_t threads = 1) {
  FinderConfig cfg;
  cfg.num_seeds = 4;
  cfg.max_ordering_length = 200;
  cfg.num_threads = threads;
  return cfg;
}

JsonValue parse(const std::string& line) {
  JsonValue json;
  EXPECT_TRUE(JsonValue::parse(line, &json).is_ok()) << line;
  return json;
}

std::string error_code_of(const JsonValue& response) {
  const JsonValue* error = response.find("error");
  if (error == nullptr) return "";
  const JsonValue* code = error->find("code");
  std::string name;
  if (code != nullptr) {
    EXPECT_TRUE(code->get_string(&name).is_ok());
  }
  return name;
}

std::string run_line(std::uint64_t id, const std::string& design,
                     const FinderConfig& cfg) {
  JsonValue::Object obj;
  obj.emplace("id", JsonValue(id));
  obj.emplace("op", JsonValue("run_finder"));
  obj.emplace("design", JsonValue(design));
  obj.emplace("config", to_json(cfg));
  return JsonValue(std::move(obj)).dump();
}

std::string load_line(std::uint64_t id, const std::string& name,
                      const fs::path& aux, const fs::path& snapshot = {}) {
  JsonValue::Object obj;
  obj.emplace("id", JsonValue(id));
  obj.emplace("op", JsonValue("load_design"));
  obj.emplace("design", JsonValue(name));
  if (!aux.empty()) obj.emplace("aux", JsonValue(aux.string()));
  if (!snapshot.empty()) obj.emplace("snapshot", JsonValue(snapshot.string()));
  return JsonValue(std::move(obj)).dump();
}

/// The result block of an OK response, as a compact string.
std::string result_dump(const std::string& line) {
  const JsonValue json = parse(line);
  const JsonValue* result = json.find("result");
  EXPECT_NE(result, nullptr) << line;
  return result == nullptr ? std::string() : result->dump();
}

/// One stats snapshot's "global" block (one call — counters from a
/// single consistent snapshot).
JsonValue global_stats(Server& server) {
  const JsonValue stats =
      parse(server.handle_line(R"({"id": 999999, "op": "stats"})"));
  const JsonValue* result = stats.find("result");
  EXPECT_NE(result, nullptr);
  if (result == nullptr) return JsonValue();
  const JsonValue* global = result->find("global");
  EXPECT_NE(global, nullptr);
  return global == nullptr ? JsonValue() : *global;
}

std::uint64_t u64_field(const JsonValue& obj, const std::string& key) {
  const JsonValue* value = obj.find(key);
  EXPECT_NE(value, nullptr) << key;
  std::uint64_t out = 0;
  if (value != nullptr) {
    EXPECT_TRUE(value->get_uint64(&out).is_ok());
  }
  return out;
}

/// Joins a serve() thread even when a failed ASSERT unwinds the test
/// body early (an unjoined std::thread would terminate the process).
struct ServeJoiner {
  std::atomic<bool>& stop;
  std::thread& thread;
  ~ServeJoiner() {
    stop.store(true);
    if (thread.joinable()) thread.join();
  }
};

/// Connect, retrying while the serve() thread is still binding.
Status connect_with_retry(const fs::path& path, Client* client) {
  Status st = Status::ok();
  for (int i = 0; i < 200; ++i) {
    st = Client::connect(path, client);
    if (st.is_ok()) return st;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return st;
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tanglefind_chaos_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
    failpoint::disarm_all();
    failpoint::reseed(2026);
    if (!failpoint::compiled_in()) {
      GTEST_SKIP() << "built without -DGTL_FAILPOINTS=ON; chaos schedules "
                      "cannot fire";
    }
  }
  void TearDown() override {
    failpoint::disarm_all();
    fs::remove_all(dir_);
  }

  /// Write a real Bookshelf design under `stem` and return its .aux.
  fs::path disk_design(const std::string& stem, std::uint64_t seed) {
    write_bookshelf(tiny_design(seed), dir_, stem);
    return dir_ / (stem + ".aux");
  }

  fs::path dir_;
};

// The headline schedule: 400 requests through a deterministic fault
// plan — the first 150 shed at admission, 60 more killed in the worker
// — must produce exactly one reply each, only documented codes, and
// byte-identical results for every survivor.
TEST_F(ChaosTest, AdmissionAndWorkerFaultsExactlyOneReply) {
  constexpr std::size_t kRequests = 400;
  constexpr std::uint64_t kAdmitFaults = 150;
  constexpr std::uint64_t kExecuteFaults = 60;

  ServerConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = kRequests;  // no organic sheds: every
                                   // "overloaded" below is injected
  Server server(cfg);
  ASSERT_TRUE(server.preload("tiny", tiny_design()).is_ok());

  // Fault-free baseline for the byte-identical assertion (runs before
  // arming, so it burns no schedule budget).
  const std::string baseline =
      result_dump(server.handle_line(run_line(100000, "tiny",
                                              quick_config())));

  failpoint::Spec admit;
  admit.limit = kAdmitFaults;
  failpoint::arm("serve.admit", admit);
  failpoint::Spec execute;
  execute.limit = kExecuteFaults;
  failpoint::arm("serve.execute", execute);

  std::mutex mu;
  std::condition_variable cv;
  std::size_t done = 0;
  std::vector<std::vector<std::string>> per_id(kRequests + 1);

  for (std::uint64_t id = 1; id <= kRequests; ++id) {
    server.submit(run_line(id, "tiny", quick_config()),
                  [&, id](const std::string& line) {
                    std::lock_guard<std::mutex> lk(mu);
                    per_id[id].push_back(line);
                    ++done;
                    cv.notify_all();
                  });
  }
  {
    std::unique_lock<std::mutex> lk(mu);
    ASSERT_TRUE(cv.wait_for(lk, std::chrono::seconds(240),
                            [&] { return done >= kRequests; }))
        << "only " << done << "/" << kRequests << " replies arrived";
  }
  // Settle window: a duplicate reply would land here and be caught.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::size_t ok = 0, overloaded = 0, internal = 0;
  {
    std::lock_guard<std::mutex> lk(mu);
    ASSERT_EQ(done, kRequests);
    for (std::uint64_t id = 1; id <= kRequests; ++id) {
      ASSERT_EQ(per_id[id].size(), 1u)
          << "request " << id << " got " << per_id[id].size() << " replies";
      const JsonValue response = parse(per_id[id][0]);
      const std::string code = error_code_of(response);
      if (code.empty()) {
        ++ok;
        const JsonValue* result = response.find("result");
        ASSERT_NE(result, nullptr);
        EXPECT_EQ(result->dump(), baseline)
            << "request " << id
            << ": a result that survives faults must be byte-identical";
      } else if (code == "overloaded") {
        ++overloaded;
        const JsonValue* error = response.find("error");
        const JsonValue* hint = error->find("retry_after_ms");
        ASSERT_NE(hint, nullptr) << "sheds must carry a backoff hint";
      } else if (code == "internal") {
        ++internal;
      } else {
        FAIL() << "undocumented error code \"" << code
               << "\" in: " << per_id[id][0];
      }
    }
  }

  // The schedule is deterministic: submissions hit "serve.admit" in
  // order, so exactly the first 150 shed; the worker fault burns its
  // full 60-trigger budget on the 250 that got through.
  EXPECT_EQ(overloaded, kAdmitFaults);
  EXPECT_EQ(internal, kExecuteFaults);
  EXPECT_EQ(ok, kRequests - kAdmitFaults - kExecuteFaults);
  EXPECT_EQ(failpoint::trigger_count("serve.admit"), kAdmitFaults);
  EXPECT_EQ(failpoint::trigger_count("serve.execute"), kExecuteFaults);
  // The suite's chaos budget: this one schedule injects >= 200 faults.
  EXPECT_GE(failpoint::trigger_count("serve.admit") +
                failpoint::trigger_count("serve.execute"),
            200u);

  // Stats agree with the tally (exact: this server saw the baseline,
  // the 400 chaos requests, and this one stats call — whose own
  // completed_ok is stamped after the snapshot).
  const JsonValue global = global_stats(server);
  EXPECT_EQ(u64_field(global, "rejected_overload"), kAdmitFaults);
  EXPECT_EQ(u64_field(global, "received"), kRequests + 2);
  EXPECT_EQ(u64_field(global, "completed_ok"),
            static_cast<std::uint64_t>(ok) + 1);
}

// Injected delays (worker stalls, thread-pool stalls) reorder execution
// without ever changing bytes.
TEST_F(ChaosTest, InjectedDelaysNeverChangeResults) {
  ServerConfig cfg;
  cfg.workers = 2;
  Server server(cfg);
  ASSERT_TRUE(server.preload("tiny", tiny_design()).is_ok());
  const FinderConfig threaded = quick_config(/*threads=*/2);
  const std::string baseline =
      result_dump(server.handle_line(run_line(1000, "tiny", threaded)));

  failpoint::Spec stall;
  stall.action.kind = failpoint::Action::Kind::kDelay;
  stall.action.param = 1;  // ms
  stall.probability = 0.5;
  failpoint::arm("thread_pool.task", stall);
  stall.action.param = 2;
  failpoint::arm("serve.execute", stall);

  for (std::uint64_t id = 1; id <= 20; ++id) {
    EXPECT_EQ(result_dump(server.handle_line(run_line(id, "tiny", threaded))),
              baseline)
        << "run " << id;
  }
  EXPECT_GT(failpoint::trigger_count("thread_pool.task"), 0u);
  EXPECT_GT(failpoint::trigger_count("serve.execute"), 0u);
}

// Satellite: a failed best-effort snapshot fill must leave no partial
// cache file and no poisoned registry state, and must be visible in
// stats.
TEST_F(ChaosTest, SnapshotFillFaultLeavesNoPartialCache) {
  const fs::path aux = disk_design("d1", 21);
  const fs::path snap = dir_ / "d1.snap";

  ServerConfig cfg;
  cfg.workers = 1;
  Server server(cfg);

  failpoint::Spec fault;
  fault.limit = 1;
  failpoint::arm("snapshot.write", fault);

  // The load itself succeeds — the cache fill is best-effort.
  const std::string reply = server.handle_line(load_line(1, "d1", aux, snap));
  ASSERT_EQ(parse(reply).find("error"), nullptr) << reply;
  EXPECT_FALSE(fs::exists(snap)) << "a failed fill must not leave a file";
  EXPECT_EQ(failpoint::trigger_count("snapshot.write"), 1u);
  EXPECT_EQ(u64_field(global_stats(server), "snapshot_fill_failures"), 1u);

  // No partial/poisoned state: unload and reload with the fault spent —
  // the fill now succeeds and the cache becomes usable.
  ASSERT_EQ(parse(server.handle_line(
                      R"({"id": 2, "op": "unload_design", "design": "d1"})"))
                .find("error"),
            nullptr);
  const std::string again = server.handle_line(load_line(3, "d1", aux, snap));
  ASSERT_EQ(parse(again).find("error"), nullptr) << again;
  EXPECT_TRUE(fs::exists(snap));

  // Same discipline for an injected rename failure: nothing is left
  // behind, not even a temp file.
  const fs::path aux2 = disk_design("d2", 22);
  const fs::path snap2 = dir_ / "d2.snap";
  fault.limit = 1;
  failpoint::arm("snapshot.rename", fault);
  const std::string reply2 =
      server.handle_line(load_line(4, "d2", aux2, snap2));
  ASSERT_EQ(parse(reply2).find("error"), nullptr) << reply2;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().filename().string().find("d2.snap"),
              std::string::npos)
        << "leftover: " << entry.path();
  }
}

// A manifest write failure degrades durability, never availability: the
// load still succeeds, the failure is counted, and the next successful
// write persists the full truth.
TEST_F(ChaosTest, ManifestWriteFaultDoesNotFailTheLoad) {
  const fs::path aux1 = disk_design("d1", 31);
  const fs::path aux2 = disk_design("d2", 32);
  const fs::path manifest_path = dir_ / "manifest.json";

  ServerConfig cfg;
  cfg.workers = 1;
  cfg.manifest_path = manifest_path;
  Server server(cfg);

  failpoint::Spec fault;
  fault.limit = 1;
  failpoint::arm("manifest.write", fault);

  const std::string reply = server.handle_line(load_line(1, "d1", aux1));
  ASSERT_EQ(parse(reply).find("error"), nullptr) << reply;
  EXPECT_EQ(u64_field(global_stats(server), "manifest_write_failures"), 1u);
  EXPECT_FALSE(fs::exists(manifest_path));

  // The in-memory manifest kept the truth; the next write persists both.
  const std::string reply2 = server.handle_line(load_line(2, "d2", aux2));
  ASSERT_EQ(parse(reply2).find("error"), nullptr) << reply2;
  Manifest manifest;
  ASSERT_TRUE(read_manifest(manifest_path, &manifest).is_ok());
  EXPECT_EQ(manifest.count("d1"), 1u);
  EXPECT_EQ(manifest.count("d2"), 1u);
}

// Socket-level chaos against a live serve() loop: torn sends, EINTR
// storms, injected connection drops, and admission sheds — a client
// with the retry policy must come through with every answer correct.
TEST_F(ChaosTest, RetryingClientSurvivesSocketChaos) {
  const fs::path socket_path = dir_ / "chaos.sock";
  ServerConfig cfg;
  cfg.socket_path = socket_path;
  cfg.workers = 2;
  cfg.retry_after_ms = 10;  // keep injected-shed retries snappy
  Server server(cfg);
  ASSERT_TRUE(server.preload("tiny", tiny_design()).is_ok());

  std::atomic<bool> stop{false};
  std::thread serving([&] { EXPECT_TRUE(server.serve(stop).is_ok()); });
  ServeJoiner joiner{stop, serving};

  Client client;
  ASSERT_TRUE(connect_with_retry(socket_path, &client).is_ok());
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.base_backoff_ms = 5;
  policy.max_backoff_ms = 40;
  policy.budget_ms = 30000;
  policy.seed = 7;
  client.set_retry_policy(policy);

  // Fault-free baseline over the same transport.
  const FinderConfig qc = quick_config();
  FinderResult baseline_result;
  JsonValue baseline_raw;
  ASSERT_TRUE(client.run_finder("tiny", &qc, 0, &baseline_result,
                                &baseline_raw)
                  .is_ok());
  const std::string baseline = baseline_raw.dump();

  failpoint::Spec torn;
  torn.action.kind = failpoint::Action::Kind::kShortIo;
  torn.action.param = 5;
  torn.probability = 0.5;
  torn.limit = 40;
  failpoint::arm("socket.send", torn);

  failpoint::Spec eintr;
  eintr.action.kind = failpoint::Action::Kind::kEintr;
  eintr.probability = 0.5;
  eintr.limit = 40;
  failpoint::arm("socket.recv", eintr);

  failpoint::Spec shed;
  shed.skip = 2;
  shed.limit = 3;
  failpoint::arm("serve.admit", shed);

  for (int i = 0; i < 12; ++i) {
    FinderResult result;
    JsonValue raw;
    const Status st = client.run_finder("tiny", &qc, 0, &result, &raw);
    ASSERT_TRUE(st.is_ok()) << "query " << i << ": " << st.to_string();
    EXPECT_EQ(raw.dump(), baseline) << "query " << i;
  }

  // Now injected connection drops: the recv fault fails reads on both
  // ends, so the client must reconnect its way through.
  failpoint::Spec drop;
  drop.probability = 0.3;
  drop.limit = 4;
  failpoint::arm("socket.recv", drop);  // re-arm: fail instead of eintr

  for (int i = 0; i < 8; ++i) {
    FinderResult result;
    JsonValue raw;
    const Status st = client.run_finder("tiny", &qc, 0, &result, &raw);
    ASSERT_TRUE(st.is_ok()) << "query " << i << ": " << st.to_string();
    EXPECT_EQ(raw.dump(), baseline) << "query " << i;
  }

  EXPECT_GT(failpoint::trigger_count("socket.send"), 0u);
  EXPECT_EQ(failpoint::trigger_count("serve.admit"), 3u);

  stop.store(true);
  serving.join();
  server.stop();
}

// Runs in every build (no failpoints needed): a client that dies
// mid-response must cost the server nothing but that one connection.
TEST(ServeRobustness, ServerSurvivesClientVanishingMidResponse) {
  const fs::path socket_path =
      fs::temp_directory_path() / "gtl_chaos_vanish.sock";
  fs::remove(socket_path);

  ServerConfig cfg;
  cfg.socket_path = socket_path;
  cfg.workers = 1;
  Server server(cfg);
  ASSERT_TRUE(server.preload("tiny", tiny_design()).is_ok());

  std::atomic<bool> stop{false};
  std::thread serving([&] { EXPECT_TRUE(server.serve(stop).is_ok()); });
  ServeJoiner joiner{stop, serving};

  {
    // A rude peer: asks a real question, vanishes before the answer.
    UnixStream rude;
    Status st = Status::ok();
    for (int i = 0; i < 200; ++i) {
      st = UnixStream::connect(socket_path, &rude);
      if (st.is_ok()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    // A high id: the polite client below starts numbering at 1, and its
    // run must not collide with this one while it is still in flight.
    ASSERT_TRUE(
        rude.write_line(run_line(900001, "tiny", quick_config())).is_ok());
    rude.close();
  }

  // The server shrugged it off: a well-behaved client gets full service.
  Client client;
  ASSERT_TRUE(connect_with_retry(socket_path, &client).is_ok());
  const FinderConfig qc = quick_config();
  FinderResult result;
  EXPECT_TRUE(client.run_finder("tiny", &qc, 0, &result, nullptr).is_ok());
  JsonValue status_result;
  EXPECT_TRUE(client.status(&status_result).is_ok());

  stop.store(true);
  serving.join();
  server.stop();
  fs::remove(socket_path);
}

}  // namespace
}  // namespace gtl::serve
