// Concurrent-session stress: many client threads hammer one design
// through the server's session pool, and every single response must be
// byte-identical to a direct single-threaded Finder::run() — the
// determinism contract that makes the server's answers cacheable and
// cross-checkable.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "finder/finder_json.hpp"
#include "graphgen/planted_graph.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace gtl::serve {
namespace {

TEST(ServeSessionStress, ConcurrentQueriesMatchDirectRunByteForByte) {
  PlantedGraphConfig gcfg;
  gcfg.num_cells = 4000;
  gcfg.gtls.push_back({250, 1});
  Rng rng(23);
  BookshelfDesign design;
  design.netlist = generate_planted_graph(gcfg, rng).netlist;

  FinderConfig fcfg;
  fcfg.num_seeds = 12;
  fcfg.max_ordering_length = 800;
  fcfg.num_threads = 1;

  // The canonical answer: one direct, single-threaded session.
  Finder direct(design.netlist, fcfg);
  const std::string expected = deterministic_result_json(direct.run()).dump();

  ServerConfig scfg;
  scfg.workers = 4;
  scfg.queue_capacity = 64;
  scfg.max_idle_sessions = 3;  // fewer than threads: forces churn
  Server server(scfg);
  ASSERT_TRUE(server.preload("d", std::move(design)).is_ok());

  constexpr int kThreads = 8;
  constexpr int kRunsPerThread = 3;
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRunsPerThread; ++i) {
        JsonValue::Object obj;
        obj.emplace("id",
                    JsonValue(static_cast<std::uint64_t>(t * 1000 + i + 1)));
        obj.emplace("op", JsonValue("run_finder"));
        obj.emplace("design", JsonValue("d"));
        obj.emplace("config", to_json(fcfg));
        const std::string response_line =
            server.handle_line(JsonValue(std::move(obj)).dump());

        JsonValue response;
        if (!JsonValue::parse(response_line, &response).is_ok() ||
            !response_status(response).is_ok()) {
          failures[t] = "request failed: " + response_line;
          return;
        }
        if (response.find("result")->dump() != expected) {
          failures[t] = "result diverged from the direct run";
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].empty()) << "thread " << t << ": " << failures[t];
  }

  // The pool really was exercised concurrently: more sessions than one
  // were created, and at least one warm reuse happened.
  JsonValue stats;
  ASSERT_TRUE(
      JsonValue::parse(server.handle_line(R"({"id":999999,"op":"stats"})"),
                       &stats)
          .is_ok());
  const JsonValue* d = stats.find("result")->find("designs")->find("d");
  ASSERT_NE(d, nullptr);
  std::uint64_t queries = 0, created = 0, reused = 0;
  ASSERT_TRUE(d->find("queries")->get_uint64(&queries).is_ok());
  ASSERT_TRUE(d->find("sessions_created")->get_uint64(&created).is_ok());
  ASSERT_TRUE(d->find("sessions_reused")->get_uint64(&reused).is_ok());
  EXPECT_EQ(queries, static_cast<std::uint64_t>(kThreads * kRunsPerThread));
  EXPECT_GE(created, 1u);
  EXPECT_GE(reused, 1u);
  EXPECT_EQ(created + reused, queries);
}

}  // namespace
}  // namespace gtl::serve
