// Wire-protocol unit tests: request parsing (strictness and error-code
// selection), response serialization, and the determinism contract of
// deterministic_result_json.

#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include "finder/finder_json.hpp"

namespace gtl::serve {
namespace {

Request parse_ok(const std::string& line) {
  Request req;
  ErrorCode code = ErrorCode::kInternal;
  bool has_id = false;
  const Status st = parse_request(line, &req, &code, &has_id);
  EXPECT_TRUE(st.is_ok()) << line << " -> " << st.to_string();
  EXPECT_TRUE(has_id);
  return req;
}

struct ParseFailure {
  Status status;
  ErrorCode code = ErrorCode::kInternal;
  bool has_id = false;
};

ParseFailure parse_fail(const std::string& line) {
  Request req;
  ParseFailure f;
  f.status = parse_request(line, &req, &f.code, &f.has_id);
  EXPECT_FALSE(f.status.is_ok()) << line << " unexpectedly parsed";
  return f;
}

TEST(ServeProtocol, ParsesEveryOp) {
  EXPECT_EQ(parse_ok(R"({"id": 1, "op": "status"})").op, Op::kStatus);
  EXPECT_EQ(parse_ok(R"({"id": 2, "op": "stats"})").op, Op::kStats);

  const Request load = parse_ok(
      R"({"id": 3, "op": "load_design", "design": "ibm01",)"
      R"( "aux": "a.aux", "snapshot": "a.snap"})");
  EXPECT_EQ(load.op, Op::kLoadDesign);
  EXPECT_EQ(load.design, "ibm01");
  EXPECT_EQ(load.aux, "a.aux");
  EXPECT_EQ(load.snapshot, "a.snap");

  const Request unload =
      parse_ok(R"({"id": 4, "op": "unload_design", "design": "ibm01"})");
  EXPECT_EQ(unload.op, Op::kUnloadDesign);

  const Request cancel =
      parse_ok(R"({"id": 5, "op": "cancel", "target_id": 17})");
  EXPECT_EQ(cancel.op, Op::kCancel);
  EXPECT_EQ(cancel.target_id, 17u);

  const Request run = parse_ok(
      R"({"id": 6, "op": "run_finder", "design": "ibm01",)"
      R"( "deadline_ms": 250})");
  EXPECT_EQ(run.op, Op::kRunFinder);
  EXPECT_EQ(run.deadline_ms, 250u);
}

TEST(ServeProtocol, RunFinderConfigRoundTrips) {
  FinderConfig cfg;
  cfg.num_seeds = 17;
  cfg.max_ordering_length = 4321;
  const std::string line = R"({"id": 9, "op": "run_finder",)"
                           R"( "design": "d", "config": )" +
                           to_json(cfg).dump() + "}";
  const Request req = parse_ok(line);
  EXPECT_EQ(req.config.num_seeds, 17u);
  EXPECT_EQ(req.config.max_ordering_length, 4321u);
}

TEST(ServeProtocol, ErrorCodeProgression) {
  // Not JSON at all: parse_error, no id recoverable.
  {
    const ParseFailure f = parse_fail("{nope");
    EXPECT_EQ(f.code, ErrorCode::kParseError);
    EXPECT_FALSE(f.has_id);
  }
  // Valid JSON, not a valid request envelope: invalid_request.
  EXPECT_EQ(parse_fail("[1, 2]").code, ErrorCode::kInvalidRequest);
  EXPECT_EQ(parse_fail(R"({"op": "status"})").code,
            ErrorCode::kInvalidRequest);
  EXPECT_EQ(parse_fail(R"({"id": -3, "op": "status"})").code,
            ErrorCode::kInvalidRequest);
  EXPECT_EQ(parse_fail(R"({"id": 1, "op": "frobnicate"})").code,
            ErrorCode::kInvalidRequest);
  // The id is recovered even when the op is junk, so the error routes.
  {
    const ParseFailure f = parse_fail(R"({"id": 8, "op": "frobnicate"})");
    EXPECT_TRUE(f.has_id);
  }
  // Envelope fine, op-level fields wrong: invalid_argument.
  EXPECT_EQ(parse_fail(R"({"id": 1, "op": "run_finder"})").code,
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(parse_fail(R"({"id": 1, "op": "load_design", "design": "d"})")
                .code,
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(parse_fail(R"({"id": 1, "op": "cancel"})").code,
            ErrorCode::kInvalidArgument);
}

TEST(ServeProtocol, RejectsUnknownKeys) {
  EXPECT_EQ(parse_fail(R"({"id": 1, "op": "status", "extra": 1})").code,
            ErrorCode::kInvalidRequest);
  EXPECT_EQ(
      parse_fail(
          R"({"id": 1, "op": "run_finder", "design": "d", "designn": "d"})")
          .code,
      ErrorCode::kInvalidRequest);
}

TEST(ServeProtocol, ResponseLinesRoundTrip) {
  JsonValue::Object result;
  result.emplace("answer", JsonValue(std::uint64_t{42}));
  ServerTiming timing;
  timing.queue_seconds = 0.5;
  timing.run_seconds = 1.25;
  const std::string ok =
      ok_line(7, Op::kRunFinder, JsonValue(std::move(result)), &timing);

  JsonValue parsed;
  ASSERT_TRUE(JsonValue::parse(ok, &parsed).is_ok());
  EXPECT_TRUE(response_status(parsed).is_ok());
  std::uint64_t id = 0;
  ASSERT_TRUE(parsed.find("id")->get_uint64(&id).is_ok());
  EXPECT_EQ(id, 7u);
  EXPECT_NE(parsed.find("server"), nullptr);

  const std::string err = error_line(true, 9, true, Op::kRunFinder,
                                     ErrorCode::kOverloaded, "queue full");
  ASSERT_TRUE(JsonValue::parse(err, &parsed).is_ok());
  const Status st = response_status(parsed);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_NE(st.message().find("queue full"), std::string::npos);
}

TEST(ServeProtocol, ErrorLineWithoutIdIsNull) {
  const std::string err = error_line(false, 0, false, Op::kStatus,
                                     ErrorCode::kParseError, "bad line");
  JsonValue parsed;
  ASSERT_TRUE(JsonValue::parse(err, &parsed).is_ok());
  EXPECT_TRUE(parsed.find("id")->is_null());
  EXPECT_TRUE(parsed.find("op")->is_null());
  EXPECT_EQ(response_status(parsed).code(), StatusCode::kParseError);
}

TEST(ServeProtocol, ResponseStatusMapsEveryWireCode) {
  const auto status_for = [](ErrorCode code) {
    JsonValue parsed;
    EXPECT_TRUE(
        JsonValue::parse(error_line(true, 1, true, Op::kRunFinder, code, "m"),
                         &parsed)
            .is_ok());
    return response_status(parsed);
  };
  EXPECT_EQ(status_for(ErrorCode::kNotFound).code(), StatusCode::kNotFound);
  EXPECT_EQ(status_for(ErrorCode::kOverloaded).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(status_for(ErrorCode::kDeadlineExceeded).code(),
            StatusCode::kCancelled);
  EXPECT_EQ(status_for(ErrorCode::kCancelled).code(), StatusCode::kCancelled);
  EXPECT_EQ(status_for(ErrorCode::kInvalidArgument).code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeProtocol, DeterministicResultZeroesWallClock) {
  FinderResult result;
  result.orderings_grown = 3;
  result.phase1_2_seconds = 1.5;
  result.phase3_seconds = 0.25;
  result.total_seconds = 1.75;

  const JsonValue json = deterministic_result_json(result);
  double v = 1.0;
  ASSERT_TRUE(json.find("phase1_2_seconds")->get_double(&v).is_ok());
  EXPECT_EQ(v, 0.0);
  ASSERT_TRUE(json.find("phase3_seconds")->get_double(&v).is_ok());
  EXPECT_EQ(v, 0.0);
  ASSERT_TRUE(json.find("total_seconds")->get_double(&v).is_ok());
  EXPECT_EQ(v, 0.0);

  // Identical runs with different wall clocks serialize byte-identically.
  FinderResult other = result;
  other.phase1_2_seconds = 9.0;
  other.total_seconds = 99.0;
  EXPECT_EQ(deterministic_result_json(result).dump(),
            deterministic_result_json(other).dump());
}

}  // namespace
}  // namespace gtl::serve
