// DesignRegistry unit tests: LRU eviction under a byte cap, ref-counted
// entries surviving eviction, and the snapshot-backed load path.

#include "serve/design_registry.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "netlist/netlist_io.hpp"
#include "test_helpers.hpp"

namespace gtl::serve {
namespace {

BookshelfDesign small_design(std::size_t num_cells) {
  BookshelfDesign design;
  NetlistBuilder nb;
  for (std::size_t c = 0; c < num_cells; ++c) nb.add_cell();
  for (std::size_t c = 0; c + 1 < num_cells; ++c) {
    nb.add_net({static_cast<CellId>(c), static_cast<CellId>(c + 1)});
  }
  design.netlist = nb.build();
  return design;
}

TEST(DesignRegistry, InsertFindErase) {
  DesignRegistry registry(std::size_t{64} << 20);
  DesignRegistry::LoadInfo info;
  ASSERT_TRUE(registry.insert("a", small_design(16), &info).is_ok());
  EXPECT_GT(info.entry->resident_bytes, 0u);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.total_resident_bytes(), info.entry->resident_bytes);

  const DesignRegistry::EntryPtr found = registry.find("a");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->design.netlist.num_cells(), 16u);
  EXPECT_EQ(registry.find("missing"), nullptr);

  EXPECT_TRUE(registry.erase("a"));
  EXPECT_FALSE(registry.erase("a"));
  EXPECT_EQ(registry.total_resident_bytes(), 0u);
}

TEST(DesignRegistry, RejectsDuplicateNames) {
  DesignRegistry registry(std::size_t{64} << 20);
  DesignRegistry::LoadInfo info;
  ASSERT_TRUE(registry.insert("a", small_design(8), &info).is_ok());
  const Status st = registry.insert("a", small_design(8), &info);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(DesignRegistry, EvictsLeastRecentlyUsed) {
  // Size the cap so exactly two of these designs fit.
  DesignRegistry::LoadInfo probe;
  {
    DesignRegistry sizing(std::size_t{64} << 20);
    ASSERT_TRUE(sizing.insert("p", small_design(64), &probe).is_ok());
  }
  const std::size_t one = probe.entry->resident_bytes;
  DesignRegistry registry(2 * one + one / 2);

  DesignRegistry::LoadInfo info;
  ASSERT_TRUE(registry.insert("a", small_design(64), &info).is_ok());
  ASSERT_TRUE(registry.insert("b", small_design(64), &info).is_ok());
  EXPECT_TRUE(info.evicted.empty());

  // Touch "a" so "b" is the LRU victim.
  ASSERT_NE(registry.find("a"), nullptr);
  ASSERT_TRUE(registry.insert("c", small_design(64), &info).is_ok());
  ASSERT_EQ(info.evicted.size(), 1u);
  EXPECT_EQ(info.evicted[0], "b");
  EXPECT_EQ(registry.find("b"), nullptr);
  EXPECT_NE(registry.find("a"), nullptr);
  EXPECT_NE(registry.find("c"), nullptr);
}

TEST(DesignRegistry, OversizedDesignStillAdmitted) {
  DesignRegistry registry(1);  // everything is over this cap
  DesignRegistry::LoadInfo info;
  ASSERT_TRUE(registry.insert("big", small_design(32), &info).is_ok());
  EXPECT_NE(registry.find("big"), nullptr);
  // Loading another evicts the first but still admits the newcomer.
  ASSERT_TRUE(registry.insert("big2", small_design(32), &info).is_ok());
  ASSERT_EQ(info.evicted.size(), 1u);
  EXPECT_EQ(info.evicted[0], "big");
  EXPECT_NE(registry.find("big2"), nullptr);
}

TEST(DesignRegistry, EntrySurvivesEviction) {
  DesignRegistry registry(1);
  DesignRegistry::LoadInfo info;
  ASSERT_TRUE(registry.insert("a", small_design(16), &info).is_ok());
  const DesignRegistry::EntryPtr held = registry.find("a");
  ASSERT_NE(held, nullptr);

  ASSERT_TRUE(registry.insert("b", small_design(16), &info).is_ok());
  EXPECT_EQ(registry.find("a"), nullptr);
  // The held reference still reads valid data after eviction.
  EXPECT_EQ(held->design.netlist.num_cells(), 16u);
}

TEST(DesignRegistry, ListIsMostRecentlyUsedFirst) {
  DesignRegistry registry(std::size_t{64} << 20);
  DesignRegistry::LoadInfo info;
  ASSERT_TRUE(registry.insert("a", small_design(8), &info).is_ok());
  ASSERT_TRUE(registry.insert("b", small_design(8), &info).is_ok());
  ASSERT_NE(registry.find("a"), nullptr);

  const auto list = registry.list();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].name, "a");
  EXPECT_EQ(list[1].name, "b");
  EXPECT_EQ(list[0].cells, 8u);
}

TEST(DesignRegistry, LoadsFromSnapshot) {
  const std::filesystem::path snap =
      std::filesystem::temp_directory_path() / "gtl_registry_test.snap";
  std::filesystem::remove(snap);
  ASSERT_TRUE(try_write_snapshot(small_design(24), snap).is_ok());

  DesignRegistry registry(std::size_t{64} << 20);
  DesignRegistry::LoadInfo info;
  ASSERT_TRUE(registry.load("snapped", "", snap, &info).is_ok());
  EXPECT_TRUE(info.snapshot_hit);
  EXPECT_EQ(info.entry->design.netlist.num_cells(), 24u);
  std::filesystem::remove(snap);
}

TEST(DesignRegistry, MissingSnapshotWithoutAuxIsNotFound) {
  DesignRegistry registry(std::size_t{64} << 20);
  DesignRegistry::LoadInfo info;
  const Status st = registry.load(
      "ghost", "", "/nonexistent/dir/ghost.snap", &info);
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST(DesignRegistry, ResidentBytesAccountsPlacement) {
  BookshelfDesign bare = small_design(32);
  BookshelfDesign placed = small_design(32);
  placed.x.assign(32, 1.0);
  placed.y.assign(32, 2.0);
  EXPECT_GT(design_resident_bytes(placed), design_resident_bytes(bare));
}

}  // namespace
}  // namespace gtl::serve
