// Server behavior tests: request routing, the byte-identical determinism
// contract, admission control, deadlines, cancellation, and the socket
// transport end-to-end (Server::serve + Client).

#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "finder/finder_json.hpp"
#include "graphgen/planted_graph.hpp"
#include "netlist/netlist_io.hpp"
#include "serve/client.hpp"
#include "util/rng.hpp"

namespace gtl::serve {
namespace {

BookshelfDesign planted_design() {
  PlantedGraphConfig cfg;
  cfg.num_cells = 3000;
  cfg.gtls.push_back({200, 1});
  Rng rng(11);
  BookshelfDesign design;
  design.netlist = generate_planted_graph(cfg, rng).netlist;
  return design;
}

/// Small-but-real config: runs in tens of milliseconds.
FinderConfig quick_config() {
  FinderConfig cfg;
  cfg.num_seeds = 8;
  cfg.max_ordering_length = 600;
  cfg.num_threads = 1;
  return cfg;
}

/// Heavy config: runs long enough that a cancel/deadline lands mid-run.
FinderConfig slow_config() {
  FinderConfig cfg;
  cfg.num_seeds = 2000;
  cfg.max_ordering_length = 3000;
  cfg.num_threads = 1;
  return cfg;
}

JsonValue parse(const std::string& line) {
  JsonValue json;
  EXPECT_TRUE(JsonValue::parse(line, &json).is_ok()) << line;
  return json;
}

std::string error_code_of(const JsonValue& response) {
  const JsonValue* error = response.find("error");
  if (error == nullptr) return "";
  std::string code;
  EXPECT_TRUE(error->find("code")->get_string(&code).is_ok());
  return code;
}

std::string run_line(std::uint64_t id, const std::string& design,
                     const FinderConfig& cfg, std::uint64_t deadline_ms = 0) {
  JsonValue::Object obj;
  obj.emplace("id", JsonValue(id));
  obj.emplace("op", JsonValue("run_finder"));
  obj.emplace("design", JsonValue(design));
  obj.emplace("config", to_json(cfg));
  if (deadline_ms != 0) {
    obj.emplace("deadline_ms", JsonValue(deadline_ms));
  }
  return JsonValue(std::move(obj)).dump();
}

/// Connect, retrying while the serve() thread is still binding.
Status connect_with_retry(const std::filesystem::path& path, Client* client) {
  Status st = Status::ok();
  for (int i = 0; i < 200; ++i) {
    st = Client::connect(path, client);
    if (st.is_ok()) return st;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return st;
}

/// Collects one asynchronous response.
class Capture {
 public:
  Server::ResponseFn sink() {
    return [this](const std::string& line) {
      std::lock_guard<std::mutex> lk(mu_);
      line_ = line;
      done_ = true;
      cv_.notify_all();
    };
  }
  std::string wait() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return done_; });
    return line_;
  }
  bool done() {
    std::lock_guard<std::mutex> lk(mu_);
    return done_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::string line_;
  bool done_ = false;
};

TEST(Server, StatusAndStatsReflectPreload) {
  ServerConfig cfg;
  Server server(cfg);
  ASSERT_TRUE(server.preload("d", planted_design()).is_ok());

  const JsonValue status =
      parse(server.handle_line(R"({"id":1,"op":"status"})"));
  ASSERT_TRUE(response_status(status).is_ok());
  const JsonValue* designs = status.find("result")->find("designs");
  ASSERT_NE(designs, nullptr);
  ASSERT_EQ(designs->array().size(), 1u);
  std::string name;
  ASSERT_TRUE(designs->array()[0].find("name")->get_string(&name).is_ok());
  EXPECT_EQ(name, "d");

  const JsonValue stats = parse(server.handle_line(R"({"id":2,"op":"stats"})"));
  ASSERT_TRUE(response_status(stats).is_ok());
  std::uint64_t received = 0;
  ASSERT_TRUE(stats.find("result")
                  ->find("global")
                  ->find("received")
                  ->get_uint64(&received)
                  .is_ok());
  EXPECT_EQ(received, 2u);
}

TEST(Server, RunFinderMatchesDirectRunByteForByte) {
  const BookshelfDesign design = planted_design();
  const FinderConfig cfg = quick_config();

  // Direct, single-threaded reference run.
  Finder direct(design.netlist, cfg);
  const std::string expected =
      deterministic_result_json(direct.run()).dump();

  ServerConfig scfg;
  Server server(scfg);
  ASSERT_TRUE(server.preload("d", planted_design()).is_ok());

  const JsonValue response = parse(server.handle_line(run_line(1, "d", cfg)));
  ASSERT_TRUE(response_status(response).is_ok());
  EXPECT_EQ(response.find("result")->dump(), expected);

  // Again through a warm (reused) session: still byte-identical.
  const JsonValue again = parse(server.handle_line(run_line(2, "d", cfg)));
  ASSERT_TRUE(response_status(again).is_ok());
  EXPECT_EQ(again.find("result")->dump(), expected);

  std::uint64_t reused = 0;
  const JsonValue stats = parse(server.handle_line(R"({"id":3,"op":"stats"})"));
  ASSERT_TRUE(stats.find("result")
                  ->find("designs")
                  ->find("d")
                  ->find("sessions_reused")
                  ->get_uint64(&reused)
                  .is_ok());
  EXPECT_EQ(reused, 1u);
}

TEST(Server, UnknownDesignIsNotFound) {
  ServerConfig cfg;
  Server server(cfg);
  const JsonValue response =
      parse(server.handle_line(run_line(1, "ghost", quick_config())));
  EXPECT_EQ(error_code_of(response), "not_found");
}

TEST(Server, UnloadMakesDesignNotFound) {
  ServerConfig cfg;
  Server server(cfg);
  ASSERT_TRUE(server.preload("d", planted_design()).is_ok());
  const JsonValue unloaded = parse(
      server.handle_line(R"({"id":1,"op":"unload_design","design":"d"})"));
  ASSERT_TRUE(response_status(unloaded).is_ok());
  EXPECT_EQ(error_code_of(parse(server.handle_line(
                run_line(2, "d", quick_config())))),
            "not_found");
  EXPECT_EQ(error_code_of(parse(server.handle_line(
                R"({"id":3,"op":"unload_design","design":"d"})"))),
            "not_found");
}

TEST(Server, OverloadedWhenQueueFull) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  Server server(cfg);
  ASSERT_TRUE(server.preload("d", planted_design()).is_ok());

  // First request occupies the single worker for a while; the second
  // fills the queue; the third must bounce with "overloaded" (and the
  // rejection is inline, so no waiting).
  Capture first, second, third;
  server.submit(run_line(1, "d", slow_config()), first.sink());
  // Wait for the worker to pick up #1, so #2 queues instead of bouncing.
  for (int i = 0; i < 500; ++i) {
    const JsonValue status =
        parse(server.handle_line(R"({"id":100,"op":"status"})"));
    std::uint64_t depth = 1;
    ASSERT_TRUE(status.find("result")
                    ->find("queue_depth")
                    ->get_uint64(&depth)
                    .is_ok());
    if (depth == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  server.submit(run_line(2, "d", quick_config()), second.sink());
  server.submit(run_line(3, "d", quick_config()), third.sink());
  EXPECT_EQ(error_code_of(parse(third.wait())), "overloaded");

  // The queued ones still complete normally.
  EXPECT_TRUE(response_status(parse(first.wait())).is_ok());
  EXPECT_TRUE(response_status(parse(second.wait())).is_ok());

  std::uint64_t rejected = 0;
  const JsonValue stats = parse(server.handle_line(R"({"id":4,"op":"stats"})"));
  ASSERT_TRUE(stats.find("result")
                  ->find("global")
                  ->find("rejected_overload")
                  ->get_uint64(&rejected)
                  .is_ok());
  EXPECT_EQ(rejected, 1u);
}

TEST(Server, DeadlineExpiresMidRun) {
  ServerConfig cfg;
  Server server(cfg);
  ASSERT_TRUE(server.preload("d", planted_design()).is_ok());
  const JsonValue response =
      parse(server.handle_line(run_line(1, "d", slow_config(), 5)));
  EXPECT_EQ(error_code_of(response), "deadline_exceeded");
}

TEST(Server, DefaultDeadlineApplies) {
  ServerConfig cfg;
  cfg.default_deadline_ms = 5;
  Server server(cfg);
  ASSERT_TRUE(server.preload("d", planted_design()).is_ok());
  const JsonValue response =
      parse(server.handle_line(run_line(1, "d", slow_config())));
  EXPECT_EQ(error_code_of(response), "deadline_exceeded");
}

TEST(Server, CancelStopsInFlightRun) {
  ServerConfig cfg;
  Server server(cfg);
  ASSERT_TRUE(server.preload("d", planted_design()).is_ok());

  Capture run;
  server.submit(run_line(42, "d", slow_config()), run.sink());
  // The cancel op is inline, so it can land while 42 runs.
  const JsonValue cancel = parse(
      server.handle_line(R"({"id":43,"op":"cancel","target_id":42})"));
  ASSERT_TRUE(response_status(cancel).is_ok());
  EXPECT_EQ(error_code_of(parse(run.wait())), "cancelled");
}

TEST(Server, CancelUnknownTargetIsNotFound) {
  ServerConfig cfg;
  Server server(cfg);
  const JsonValue response = parse(
      server.handle_line(R"({"id":1,"op":"cancel","target_id":999})"));
  EXPECT_EQ(error_code_of(response), "not_found");
}

TEST(Server, DuplicateInFlightIdRejected) {
  ServerConfig cfg;
  Server server(cfg);
  ASSERT_TRUE(server.preload("d", planted_design()).is_ok());

  Capture first, dup;
  server.submit(run_line(7, "d", slow_config()), first.sink());
  server.submit(run_line(7, "d", quick_config()), dup.sink());
  EXPECT_EQ(error_code_of(parse(dup.wait())), "invalid_request");
  // Kill the long run so the test exits quickly.
  (void)server.handle_line(R"({"id":8,"op":"cancel","target_id":7})");
  (void)first.wait();
}

TEST(Server, StopDrainsQueueWithCancelled) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 8;
  Server server(cfg);
  ASSERT_TRUE(server.preload("d", planted_design()).is_ok());

  Capture running, queued;
  server.submit(run_line(1, "d", slow_config()), running.sink());
  server.submit(run_line(2, "d", quick_config()), queued.sink());
  server.stop();
  // The in-flight run was cancelled, the queued one drained.
  EXPECT_EQ(error_code_of(parse(running.wait())), "cancelled");
  EXPECT_EQ(error_code_of(parse(queued.wait())), "cancelled");

  // Post-stop submissions are refused, not lost.
  Capture late;
  server.submit(run_line(3, "d", quick_config()), late.sink());
  EXPECT_EQ(error_code_of(parse(late.wait())), "cancelled");
}

TEST(Server, SocketRoundTripWithClient) {
  const std::filesystem::path socket_path =
      std::filesystem::temp_directory_path() / "gtl_server_test.sock";
  std::filesystem::remove(socket_path);

  ServerConfig cfg;
  cfg.socket_path = socket_path;
  Server server(cfg);
  ASSERT_TRUE(server.preload("d", planted_design()).is_ok());

  std::atomic<bool> stop{false};
  Status serve_status = Status::ok();
  std::thread serving(
      [&] { serve_status = server.serve(stop); });

  Client client;
  ASSERT_TRUE(connect_with_retry(socket_path, &client).is_ok());

  JsonValue status;
  ASSERT_TRUE(client.status(&status).is_ok());
  EXPECT_EQ(status.find("designs")->array().size(), 1u);

  const FinderConfig qcfg = quick_config();
  FinderResult over_wire;
  JsonValue raw;
  ASSERT_TRUE(client.run_finder("d", &qcfg, 0, &over_wire, &raw).is_ok());

  Finder direct(server.registry().find("d")->design.netlist, qcfg);
  EXPECT_EQ(raw.dump(), deterministic_result_json(direct.run()).dump());
  EXPECT_EQ(over_wire.total_seconds, 0.0);

  // Wire errors surface as Status values.
  FinderResult ignored;
  const Status miss = client.run_finder("ghost", &qcfg, 0, &ignored);
  EXPECT_EQ(miss.code(), StatusCode::kNotFound);

  JsonValue stats;
  ASSERT_TRUE(client.stats(&stats).is_ok());
  std::uint64_t ok_count = 0;
  ASSERT_TRUE(stats.find("global")
                  ->find("completed_ok")
                  ->get_uint64(&ok_count)
                  .is_ok());
  EXPECT_GE(ok_count, 2u);

  stop.store(true);
  serving.join();
  EXPECT_TRUE(serve_status.is_ok()) << serve_status.to_string();
  EXPECT_FALSE(std::filesystem::exists(socket_path));
}

TEST(Server, LoadDesignOverWireFromSnapshot) {
  const std::filesystem::path dir = std::filesystem::temp_directory_path();
  const std::filesystem::path snap = dir / "gtl_server_load_test.snap";
  const std::filesystem::path socket_path = dir / "gtl_server_load_test.sock";
  std::filesystem::remove(snap);
  std::filesystem::remove(socket_path);
  ASSERT_TRUE(try_write_snapshot(planted_design(), snap).is_ok());

  ServerConfig cfg;
  cfg.socket_path = socket_path;
  Server server(cfg);
  std::atomic<bool> stop{false};
  std::thread serving([&] { (void)server.serve(stop); });

  Client client;
  ASSERT_TRUE(connect_with_retry(socket_path, &client).is_ok());
  JsonValue result;
  ASSERT_TRUE(client.load_design("snapped", "", snap, &result).is_ok());
  bool hit = false;
  ASSERT_TRUE(result.find("snapshot_hit")->get_bool(&hit).is_ok());
  EXPECT_TRUE(hit);

  // Re-loading the same name from the same sources is idempotent: a
  // client that lost the first reply can safely resend.
  JsonValue dup_result;
  ASSERT_TRUE(client.load_design("snapped", "", snap, &dup_result).is_ok());
  bool idempotent = false;
  ASSERT_NE(dup_result.find("idempotent"), nullptr);
  ASSERT_TRUE(dup_result.find("idempotent")->get_bool(&idempotent).is_ok());
  EXPECT_TRUE(idempotent);

  // The same name from *different* sources is still already_loaded.
  const Status dup =
      client.load_design("snapped", "elsewhere.aux", "");
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dup.message().find("already_loaded"), std::string::npos);

  const FinderConfig qcfg = quick_config();
  FinderResult result_run;
  EXPECT_TRUE(client.run_finder("snapped", &qcfg, 0, &result_run).is_ok());

  stop.store(true);
  serving.join();
  std::filesystem::remove(snap);
}

}  // namespace
}  // namespace gtl::serve
