// Differential fuzzing for the SIMD kernel layer (ctest label: fuzz).
//
// Property under test: whichever backend this binary was built with
// (GTL_SIMD=avx2 or scalar) is BITWISE interchangeable with the embedded
// blocked-scalar reference gtl::simd::scalar_ref, on random inputs and
// on the edge shapes vector code gets wrong first — n = 0/1, sizes that
// are not a multiple of the lane width, all-equal inputs, huge integers
// past the exact-conversion range, singular/negative diagonals.  On top
// of the kernel level, the fused finder fast path and the PCG solver are
// fuzzed end to end against their exact compositions.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "finder/score_curve.hpp"
#include "graphgen/planted_graph.hpp"
#include "metrics/scores.hpp"
#include "order/linear_ordering.hpp"
#include "place/linear_system.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace gtl {
namespace {

constexpr std::size_t kSizes[] = {0,  1,  2,  3,  4,   5,   7,  8,
                                  15, 16, 17, 33, 100, 255, 1021};

double random_double(Rng& rng) {
  // Mix magnitudes: uniform [0,1), scaled, and occasional exact zeros.
  const std::uint64_t pick = rng.next_below(8);
  if (pick == 0) return 0.0;
  const double u = rng.next_double();
  if (pick == 1) return u * 1e-6;
  if (pick == 2) return u * 1e9;
  if (pick == 3) return -u;
  return u;
}

std::vector<double> random_array(Rng& rng, std::size_t n) {
  std::vector<double> v(n);
  for (double& x : v) x = random_double(rng);
  return v;
}

void expect_bits_equal(std::span<const double> got,
                       std::span<const double> want, const char* what,
                       std::size_t n) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::memcmp(&got[i], &want[i], sizeof(double)), 0)
        << what << " n=" << n << " lane " << i << ": " << got[i] << " vs "
        << want[i];
  }
}

void expect_scalar_bits_equal(double got, double want, const char* what,
                              std::size_t n) {
  ASSERT_EQ(std::memcmp(&got, &want, sizeof(double)), 0)
      << what << " n=" << n << ": " << got << " vs " << want;
}

TEST(SimdDifferential, ElementwiseKernelsMatchScalarRef) {
  Rng rng(2026'08'08);
  for (const std::size_t n : kSizes) {
    const std::vector<double> a = random_array(rng, n);
    std::vector<double> b = random_array(rng, n);
    for (double& x : b) {
      if (x == 0.0) x = 1.0;  // divisor lanes
    }
    std::vector<double> got(n), want(n);

    simd::div_by_scalar(a.data(), n, 3.7, got.data());
    simd::scalar_ref::div_by_scalar(a.data(), n, 3.7, want.data());
    expect_bits_equal(got, want, "div_by_scalar", n);

    simd::mul_by_scalar(a.data(), n, -0.3, got.data());
    simd::scalar_ref::mul_by_scalar(a.data(), n, -0.3, want.data());
    expect_bits_equal(got, want, "mul_by_scalar", n);

    simd::div_elem(a.data(), b.data(), n, got.data());
    simd::scalar_ref::div_elem(a.data(), b.data(), n, want.data());
    expect_bits_equal(got, want, "div_elem", n);

    simd::sub_elem(a.data(), b.data(), n, got.data());
    simd::scalar_ref::sub_elem(a.data(), b.data(), n, want.data());
    expect_bits_equal(got, want, "sub_elem", n);
  }
}

TEST(SimdDifferential, IntegerConversionsMatchScalarRefIncludingHugeValues) {
  Rng rng(77);
  for (const std::size_t n : kSizes) {
    std::vector<std::uint64_t> pins(n);
    std::vector<std::int64_t> cut(n);
    for (std::size_t i = 0; i < n; ++i) {
      switch (rng.next_below(5)) {
        case 0:  // past the 2^52 / 2^51 exact-conversion guards
          pins[i] = (1ULL << 52) + rng.next();
          cut[i] = static_cast<std::int64_t>((1LL << 51) + rng.next_below(
                                                               1ULL << 60));
          break;
        case 1:
          pins[i] = 0;
          cut[i] = 0;
          break;
        case 2:  // negative cuts exercise the signed trick's low range
          pins[i] = rng.next_below(1000);
          cut[i] = -static_cast<std::int64_t>(rng.next_below(1ULL << 52));
          break;
        default:
          pins[i] = rng.next_below(1ULL << 40);
          cut[i] = static_cast<std::int64_t>(rng.next_below(1ULL << 40));
      }
    }
    std::vector<double> got(n), want(n);
    simd::cut_to_double(cut.data(), n, got.data());
    simd::scalar_ref::cut_to_double(cut.data(), n, want.data());
    expect_bits_equal(got, want, "cut_to_double", n);

    for (const std::size_t k0 : {std::size_t{1}, std::size_t{3}}) {
      simd::pins_over_index(pins.data(), n, k0, got.data());
      simd::scalar_ref::pins_over_index(pins.data(), n, k0, want.data());
      expect_bits_equal(got, want, "pins_over_index", n);
    }
  }
}

TEST(SimdDifferential, ScansAndCollectorsMatchScalarRef) {
  Rng rng(424242);
  for (const std::size_t n : kSizes) {
    for (int variant = 0; variant < 3; ++variant) {
      std::vector<double> v = random_array(rng, n);
      if (variant == 1) {  // all-equal array: every lane ties
        std::fill(v.begin(), v.end(), 0.25);
      }
      if (n == 0) {
        EXPECT_EQ(simd::min_value(v.data(), 0),
                  std::numeric_limits<double>::infinity());
        EXPECT_EQ(simd::max_value(v.data(), 0),
                  -std::numeric_limits<double>::infinity());
      }
      expect_scalar_bits_equal(simd::min_value(v.data(), n),
                               simd::scalar_ref::min_value(v.data(), n),
                               "min_value", n);
      expect_scalar_bits_equal(simd::max_value(v.data(), n),
                               simd::scalar_ref::max_value(v.data(), n),
                               "max_value", n);
      const double t = variant == 2 ? 0.25 : random_double(rng);
      EXPECT_EQ(simd::any_not_below(v.data(), n, t),
                simd::scalar_ref::any_not_below(v.data(), n, t))
          << "any_not_below n=" << n;
      for (const std::size_t cap : {std::size_t{0}, std::size_t{3},
                                    std::size_t{64}, n + 1}) {
        std::vector<std::uint32_t> got_idx(cap + 1, 0xFFFFFFFF);
        std::vector<std::uint32_t> want_idx(cap + 1, 0xFFFFFFFF);
        const std::size_t got = simd::collect_not_above(
            v.data(), n, t, got_idx.data(), cap);
        const std::size_t want = simd::scalar_ref::collect_not_above(
            v.data(), n, t, want_idx.data(), cap);
        ASSERT_EQ(got, want) << "collect_not_above n=" << n << " cap=" << cap;
        EXPECT_EQ(got_idx, want_idx) << "collect_not_above n=" << n;
        const std::size_t got2 = simd::collect_not_below(
            v.data(), n, t, got_idx.data(), cap);
        const std::size_t want2 = simd::scalar_ref::collect_not_below(
            v.data(), n, t, want_idx.data(), cap);
        ASSERT_EQ(got2, want2) << "collect_not_below n=" << n;
        EXPECT_EQ(got_idx, want_idx) << "collect_not_below n=" << n;
      }
    }
  }
}

TEST(SimdDifferential, RentClampAndBoundsMatchScalarRef) {
  Rng rng(90210);
  for (const std::size_t n : kSizes) {
    std::vector<double> log_cut(n), log_ac(n), log_k(n), a_c(n);
    std::vector<double> cutd(n), expo(n);
    for (std::size_t i = 0; i < n; ++i) {
      a_c[i] = rng.next_below(10) == 0 ? 0.0 : rng.next_double() * 8.0;
      log_ac[i] = a_c[i] > 0.0 ? std::log(a_c[i]) : 0.0;
      log_cut[i] = std::log(1.0 + rng.next_double() * 1e4);
      log_k[i] = std::log(static_cast<double>(i + 2));
      cutd[i] = rng.next_below(6) == 0
                    ? 0.0
                    : static_cast<double>(rng.next_below(100000));
      // Include exponents that push t past the kMaxT fallback.
      expo[i] = rng.next_below(12) == 0 ? 500.0 : rng.next_double() * 3.0;
    }
    std::vector<double> got(n), want(n), got2(n), want2(n);
    simd::rent_clamp(log_cut.data(), log_ac.data(), log_k.data(), a_c.data(),
                     n, got.data());
    simd::scalar_ref::rent_clamp(log_cut.data(), log_ac.data(), log_k.data(),
                                 a_c.data(), n, want.data());
    expect_bits_equal(got, want, "rent_clamp", n);

    simd::bounded_scores(cutd.data(), expo.data(), log_k.data(), n, 2.5,
                         got.data(), got2.data());
    simd::scalar_ref::bounded_scores(cutd.data(), expo.data(), log_k.data(),
                                     n, 2.5, want.data(), want2.data());
    expect_bits_equal(got, want, "bounded_scores lo", n);
    expect_bits_equal(got2, want2, "bounded_scores hi", n);
  }
}

TEST(SimdDifferential, BoundedScoresEncloseTheExactScore) {
  // The fused fast path is only correct if [lo, hi] always contains the
  // exact libm-evaluated score — fuzz the enclosure invariant directly.
  Rng rng(5150);
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = 1 + rng.next_below(300);
    const double a_g = 0.5 + rng.next_double() * 7.5;
    std::vector<double> cutd(n), expo(n), log_k(n), lo(n), hi(n);
    for (std::size_t i = 0; i < n; ++i) {
      cutd[i] = static_cast<double>(rng.next_below(1'000'000));
      expo[i] = rng.next_double() * (rng.next_below(2) != 0u ? 1.0 : 40.0);
      log_k[i] = std::log(static_cast<double>(i + 1));
    }
    simd::bounded_scores(cutd.data(), expo.data(), log_k.data(), n, a_g,
                         lo.data(), hi.data());
    for (std::size_t i = 0; i < n; ++i) {
      const double exact =
          cutd[i] /
          (a_g * std::pow(static_cast<double>(i + 1), expo[i]));
      EXPECT_LE(lo[i], exact) << "round " << round << " lane " << i;
      EXPECT_GE(hi[i], exact) << "round " << round << " lane " << i;
    }
  }
}

// --- fused finder fast path on synthetic curves --------------------------

/// A netlist is only consulted for average_pins_per_cell, so one small
/// planted graph serves every synthetic ordering.
const Netlist& shared_netlist() {
  static const PlantedGraph pg = [] {
    PlantedGraphConfig gcfg;
    gcfg.num_cells = 600;
    gcfg.gtls.push_back({80, 2});
    Rng rng(1);
    return generate_planted_graph(gcfg, rng);
  }();
  return pg.netlist;
}

LinearOrdering synthetic_ordering(Rng& rng, std::size_t n, int shape) {
  LinearOrdering ord;
  ord.seed = 0;
  ord.cells.resize(n);
  ord.prefix_cut.resize(n);
  ord.prefix_pins.resize(n);
  std::uint64_t pins = 0;
  for (std::size_t k = 1; k <= n; ++k) {
    ord.cells[k - 1] = static_cast<CellId>(k - 1);
    pins += 1 + rng.next_below(6);
    ord.prefix_pins[k - 1] = pins;
    switch (shape) {
      case 0:  // V shape: clear minimum in the middle
        ord.prefix_cut[k - 1] = static_cast<std::int64_t>(
            10 + (k > n / 2 ? k - n / 2 : n / 2 - k) * 3 +
            rng.next_below(3));
        break;
      case 1:  // all-equal curve: every prefix ties
        ord.prefix_cut[k - 1] = 42;
        ord.prefix_pins[k - 1] = 4 * k;
        break;
      case 2:  // monotone rising: background logic, no minimum
        ord.prefix_cut[k - 1] = static_cast<std::int64_t>(3 * k);
        break;
      default:  // noise, with occasional zero cuts
        ord.prefix_cut[k - 1] = static_cast<std::int64_t>(
            rng.next_below(8) == 0 ? 0 : rng.next_below(200));
    }
  }
  return ord;
}

TEST(SimdDifferential, FusedExtractMatchesExactCompositionOnSyntheticCurves) {
  const Netlist& nl = shared_netlist();
  Rng rng(31337);
  CurveScratch fast_scratch, slow_scratch;
  for (int round = 0; round < 120; ++round) {
    const std::size_t n = 1 + rng.next_below(400);
    const int shape = round % 4;
    const LinearOrdering ord = synthetic_ordering(rng, n, shape);
    MinimumConfig mcfg;
    mcfg.min_size = 1 + rng.next_below(40);
    mcfg.accept_threshold =
        rng.next_below(3) == 0 ? 1e12 : 0.1 + rng.next_double() * 2.0;
    mcfg.drop_factor = 0.5 + rng.next_double() * 2.0;
    mcfg.rise_factor = 0.5 + rng.next_double() * 2.0;
    mcfg.edge_fraction = rng.next_double() * 0.2;
    const CurveConfig ccfg{.rent_min_k = 1 + rng.next_below(20)};
    for (const ScoreKind kind : {ScoreKind::kGtlSd, ScoreKind::kNgtlS}) {
      const SelectedScoreCurve sel =
          compute_selected_curve(nl, ord, ccfg, kind, slow_scratch);
      const auto want = find_clear_minimum(sel.values, mcfg);
      const CurveExtremum got =
          extract_curve_minimum(nl, ord, ccfg, kind, mcfg, fast_scratch);
      ASSERT_EQ(got.rent_exponent, sel.rent_exponent) << "round " << round;
      ASSERT_EQ(got.minimum.has_value(), want.has_value())
          << "round " << round << " shape " << shape << " n " << n;
      if (want) {
        ASSERT_EQ(got.minimum->prefix_size, want->prefix_size)
            << "round " << round;
        ASSERT_EQ(got.minimum->value, want->value) << "round " << round;
      }
    }
  }
}

// --- random SPD systems: production solver vs scalar_ref composition -----

TEST(SimdDifferential, PcgKernelsMatchScalarRefOnRandomSystems) {
  Rng rng(60606);
  for (int round = 0; round < 60; ++round) {
    const std::size_t n = 1 + rng.next_below(50);
    std::vector<double> u = random_array(rng, n);
    std::vector<double> v = random_array(rng, n);
    std::vector<double> diag(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Singular and negative diagonals included on purpose.
      switch (rng.next_below(4)) {
        case 0: diag[i] = 0.0; break;
        case 1: diag[i] = -1.0 - rng.next_double(); break;
        case 2: diag[i] = 1e-13; break;
        default: diag[i] = 0.5 + rng.next_double() * 4.0;
      }
    }
    expect_scalar_bits_equal(simd::dot_blocked(u.data(), v.data(), n),
                             simd::scalar_ref::dot_blocked(u.data(), v.data(),
                                                           n),
                             "dot_blocked", n);
    std::vector<double> x1 = u, r1 = v, x2 = u, r2 = v;
    simd::axpy2(n, 0.37, v.data(), u.data(), x1.data(), r1.data());
    simd::scalar_ref::axpy2(n, 0.37, v.data(), u.data(), x2.data(),
                            r2.data());
    expect_bits_equal(x1, x2, "axpy2 x", n);
    expect_bits_equal(r1, r2, "axpy2 r", n);

    std::vector<double> p1 = u, p2 = u;
    simd::xpay(n, v.data(), -1.7, p1.data());
    simd::scalar_ref::xpay(n, v.data(), -1.7, p2.data());
    expect_bits_equal(p1, p2, "xpay", n);

    std::vector<double> z1(n), z2(n);
    simd::jacobi_precondition(n, diag.data(), v.data(), z1.data());
    simd::scalar_ref::jacobi_precondition(n, diag.data(), v.data(),
                                          z2.data());
    expect_bits_equal(z1, z2, "jacobi", n);
  }
}

TEST(SimdDifferential, SpmvMatchesScalarRefOnRandomSparsity) {
  Rng rng(808);
  for (int round = 0; round < 40; ++round) {
    const std::size_t n = 1 + rng.next_below(60);
    // Random CSR with empty rows and non-multiple-of-lane row lengths.
    std::vector<std::size_t> row_offset(1, 0);
    std::vector<std::uint32_t> col;
    std::vector<double> val;
    for (std::size_t r = 0; r < n; ++r) {
      const std::size_t len = rng.next_below(10);
      for (std::size_t e = 0; e < len; ++e) {
        col.push_back(static_cast<std::uint32_t>(rng.next_below(n)));
        val.push_back(random_double(rng));
      }
      row_offset.push_back(col.size());
    }
    const std::vector<double> x = random_array(rng, n);
    std::vector<double> got(n), want(n);
    simd::spmv_csr(n, row_offset.data(), col.data(), val.data(), x.data(),
                   got.data());
    simd::scalar_ref::spmv_csr(n, row_offset.data(), col.data(), val.data(),
                               x.data(), want.data());
    expect_bits_equal(got, want, "spmv_csr", n);
  }
  // n = 0: a legal empty matrix must be a no-op for both backends.
  const std::size_t zero_off[] = {0};
  simd::spmv_csr(0, zero_off, nullptr, nullptr, nullptr, nullptr);
  simd::scalar_ref::spmv_csr(0, zero_off, nullptr, nullptr, nullptr, nullptr);
}

}  // namespace
}  // namespace gtl
