#pragma once
// Public API: the tangled-logic finder (DAC 2010 pipeline).
//
// Link gtl::finder (or the gtl::gtl umbrella).  What this brings in:
//   gtl::FinderConfig, gtl::Finder         session API
//       Finder::create(...)                status-returning factory
//   gtl::FinderResult, gtl::find_tangled_logic   one-shot wrapper
//   gtl::ProgressObserver, gtl::CancelToken      observation / cancel
//   gtl::to_json / finder_*_from_json      config & result (de)serialization

#include "finder/finder.hpp"
#include "finder/finder_json.hpp"
#include "finder/progress.hpp"
