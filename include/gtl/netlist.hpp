#pragma once
// Public API: netlist construction and Bookshelf I/O.
//
// The installed surface of the gtl libraries lives under <gtl/...>; the
// internal headers it pulls in keep their src-relative paths in both the
// build tree and the install tree, so these wrappers are stable aliases,
// not copies.  Link gtl::netlist (or the gtl::gtl umbrella).
//
// What this brings in:
//   gtl::Netlist, gtl::NetlistBuilder      hypergraph + builder
//   gtl::BookshelfDesign, read_bookshelf   Bookshelf .aux parsing
//   gtl::try_read_snapshot, ...            binary snapshot cache (PR 5)

#include "netlist/bookshelf.hpp"
#include "netlist/netlist.hpp"
#include "netlist/netlist_io.hpp"
