#pragma once
// Umbrella header for the public gtl API: netlists + Bookshelf I/O, the
// tangled-logic finder, and the gtl_serve client, plus the small
// utilities (Status, JsonValue, CliArgs) those interfaces traffic in.
// Fine-grained alternatives: <gtl/netlist.hpp>, <gtl/finder.hpp>,
// <gtl/serve_client.hpp>.

#include "gtl/finder.hpp"
#include "gtl/netlist.hpp"
#include "gtl/serve_client.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/status.hpp"
