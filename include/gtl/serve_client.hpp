#pragma once
// Public API: client for a gtl_serve query server.
//
// Link gtl::serve (or the gtl::gtl umbrella).  What this brings in:
//   gtl::serve::Client                     synchronous JSON-lines client
//   gtl::serve::Op, ErrorCode, Request     the wire protocol vocabulary
//
// The one-liner:
//   gtl::serve::Client c;
//   auto st = gtl::serve::Client::connect("/tmp/gtl.sock", &c);
//   gtl::FinderResult r;
//   if (st.is_ok()) st = c.run_finder("ibm01", nullptr, 0, &r);

#include "serve/client.hpp"
#include "serve/protocol.hpp"
